#ifndef DLROVER_PS_TRAINING_JOB_H_
#define DLROVER_PS_TRAINING_JOB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/status.h"
#include "elastic/checkpoint.h"
#include "elastic/heartbeat.h"
#include "elastic/oom_predictor.h"
#include "elastic/shard_queue.h"
#include "ps/iteration_model.h"
#include "ps/job_config.h"
#include "ps/model_profile.h"
#include "sim/simulator.h"

namespace dlrover {

/// How training data is served to workers.
enum class DataMode : int {
  /// DLRover's dynamic data sharding (paper Section 5.1): a central shards
  /// queue serves small variably-sized shards on demand; failures re-queue,
  /// new workers just pull.
  kDynamicSharding = 0,
  /// Conventional static partitioning: each worker owns 1/w of the data.
  /// Worker loss or scale events force a stop-and-restart with
  /// re-partitioning (the baseline behaviour).
  kStaticPartition = 1,
};

/// How resource plans are applied (paper Section 5.2).
enum class MigrationMode : int {
  /// Checkpoint to storage, kill everything, recreate, reload, resume.
  kStopAndRestart = 0,
  /// Start replacement pods while training continues; pause only for the
  /// (flash) checkpoint handoff.
  kSeamless = 1,
};

/// High-level lifecycle of a training job.
enum class JobState : int {
  kInitializing = 0,  // pods starting, training not yet begun
  kRunning = 1,
  kMigrating = 2,  // applying a resource plan
  kRestoring = 3,  // recovering from a PS loss
  kCompleted = 4,
  kFailed = 5,
};

std::string JobStateName(JobState state);

/// Static description of a training job.
struct JobSpec {
  std::string name = "job";
  ModelKind model = ModelKind::kWideDeep;
  uint64_t batch_size = 512;
  uint64_t total_steps = 200000;  // total batches across all workers
  DataMode data_mode = DataMode::kDynamicSharding;

  /// Replace crashed workers with fresh pods (dynamic sharding only).
  bool auto_replace_failed_workers = true;
  /// Use the in-memory flash-checkpoint tier (vs. RDS) for migrations and
  /// PS recovery.
  bool use_flash_checkpoint = true;
  /// Interval of the periodic fault-tolerance checkpoint.
  Duration checkpoint_interval = Minutes(10);
  /// Profiling/reporting tick.
  Duration profile_interval = Seconds(30);
  /// Job gives up after this many full restarts.
  int max_restarts = 5;
  /// A job that cannot get all its pods scheduled within this window fails
  /// with a scheduling error (the "Scheduling" failure class of Table 4).
  Duration pending_timeout = Minutes(90);
  /// Initial imbalance of parameter shares across PSes (empty = balanced).
  /// Models TensorFlow's tensor-granularity placement (paper: hot PSes).
  std::vector<double> ps_shares;
  uint64_t seed = 1234;
  /// Memoize the §4.1 iteration law on (active workers, config, PS-group
  /// state, worker speed) so steady-state shard dispatch skips re-deriving
  /// Eqns 2–5. The cache is exact (the law is a pure function); disabling it
  /// reproduces the pre-optimization evaluation path for perf comparisons.
  bool memoize_iteration = true;
  /// Pre-reserve this many ThroughputSample slots (0 = grow on demand).
  /// Long-horizon runs that must stay allocation-free in steady state set
  /// this to cover the whole horizon's profile ticks.
  size_t history_reserve = 0;
  /// Routes shard bookkeeping through the pre-optimization std::map (see
  /// ShardQueueOptions::legacy_index); only for before/after benches.
  bool legacy_shard_index = false;
  /// Pod-relaunch backoff: the i-th consecutive relaunch of a failed worker
  /// (or PS) waits base * 2^(i-1), capped, with deterministic seeded jitter
  /// in [0.5, 1.5) — so a crash-looping pod cannot hammer the scheduler.
  /// The wait is charged to JobStats::downtime_waiting_pods. base 0 (the
  /// default) relaunches immediately, byte-identical to the legacy path.
  Duration relaunch_backoff_base = 0.0;
  Duration relaunch_backoff_cap = Seconds(60);
  /// Make-before-break drain: when a staged replacement for a worker on a
  /// draining node is still not Running after this long, give up waiting
  /// (scarcity) and stop-and-restart the victim through the crash path.
  Duration drain_fallback_timeout = Minutes(6);
};

/// One profiling snapshot; consumed by the optimizer's model fitter and by
/// experiment reporting.
struct ThroughputSample {
  SimTime time = 0.0;
  JobConfig config;
  int active_workers = 0;
  double samples_per_sec = 0.0;
  /// Effective observed iteration time (w * m / throughput); what a real
  /// profiler would derive. 0 when no progress happened in the window.
  double observed_iter_time = 0.0;
  uint64_t batches_done = 0;
  Bytes max_ps_memory = 0.0;
  double worker_cpu_util = 0.0;  // used / allocated across workers
  double ps_cpu_util = 0.0;
  double worker_mem_util = 0.0;  // used / allocated across workers
  double ps_mem_util = 0.0;
};

/// Lifetime accounting for experiment reporting.
struct JobStats {
  SimTime submit_time = 0.0;
  SimTime first_training_time = -1.0;  // all pods up, first shard dispatched
  SimTime finish_time = -1.0;
  Duration downtime_checkpoint = 0.0;  // save+load on the critical path
  Duration downtime_waiting_pods = 0.0;  // paused waiting for new pods
  Duration downtime_repartition = 0.0;   // static-mode data redistribution
  int worker_failures = 0;
  int ps_failures = 0;
  int oom_events = 0;
  int full_restarts = 0;
  int migrations = 0;
  int scale_operations = 0;
  int stragglers_mitigated = 0;
  /// Make-before-break evacuations off draining nodes (completed handoffs
  /// plus whole-deployment drain migrations).
  int drain_migrations = 0;
  /// Drains that fell back to stop-and-restart under scarcity.
  int drain_fallbacks = 0;
  /// Control-plane resilience counters (all zero unless a ControlChannel is
  /// attached to the cluster). Stale/duplicate plans rejected by sequence
  /// fencing; stale plans applied anyway (fencing disabled — the hazard the
  /// unprotected bench arm measures); duplicate/late shard reports the
  /// exactly-once queue rejected; reliable shard reports that expired
  /// undelivered and were requeued.
  int plans_fenced = 0;
  int stale_plan_applies = 0;
  int shard_reports_rejected = 0;
  int shard_reports_expired = 0;
  /// Degraded-PS evidence reports sent to the node-health tracker.
  int ps_slowdown_reports = 0;
  std::string fail_reason;

  /// Job completion time; only meaningful once finished.
  Duration Jct() const { return finish_time - submit_time; }
};

/// A PS-architecture DLRM training job simulated at shard granularity.
///
/// The job owns its pods (created through the Cluster), a shards queue (or
/// static partitions), a heartbeat monitor, checkpoint state, and the
/// ground-truth iteration model. Schedulers (DLRover-RM brain or baselines)
/// steer it exclusively through ApplyPlan()/shard-size knobs and observe it
/// through profiling snapshots — the same control surface the real system
/// has.
class TrainingJob {
 public:
  TrainingJob(Simulator* sim, Cluster* cluster, const JobSpec& spec,
              const JobConfig& initial_config,
              const EnvironmentProfile& env = {});
  ~TrainingJob();

  TrainingJob(const TrainingJob&) = delete;
  TrainingJob& operator=(const TrainingJob&) = delete;

  /// Submits pods and begins training once they are up.
  void Start();

  /// Applies a new resource allocation. Worker-count-only changes under
  /// dynamic sharding are applied incrementally (no pause); anything else
  /// triggers a migration in the requested mode. Returns
  /// kFailedPrecondition while another transition is in flight.
  Status ApplyPlan(const JobConfig& new_config, MigrationMode mode);

  /// Sequence-fenced plan application for the control-plane channel: every
  /// plan the brain emits carries a strictly increasing sequence number, and
  /// a delayed duplicate or reordered stale plan (seq <= the last applied
  /// one) is rejected here — at apply time, the last line of defence — when
  /// fencing is enabled. With fencing disabled the stale plan applies anyway
  /// and is counted as a `stale_plan_applies` hazard. Without a channel
  /// attached this is exactly ApplyPlan plus sequence tracking.
  Status ApplyPlanFenced(const JobConfig& new_config, MigrationMode mode,
                         uint64_t plan_seq);

  /// Plan delivery entry point for the brain's channel messages: routes
  /// through the job master's plan gate when one is attached (so master-side
  /// fencing and crash/failover epochs apply), else falls through to
  /// ApplyPlanFenced directly.
  Status DeliverPlanFromBrain(const JobConfig& new_config, MigrationMode mode,
                              uint64_t plan_seq);

  /// Master-side plan gate (set by JobMaster when a control channel is
  /// live): receives every plan delivery before the job applies it.
  using PlanGate =
      std::function<Status(const JobConfig&, MigrationMode, uint64_t)>;
  void set_master_plan_gate(PlanGate gate) {
    master_plan_gate_ = std::move(gate);
  }
  /// The job master's registration handle with the ControlChannel (or -1):
  /// the brain pins reliable plan sends to it so deliveries to a crashed or
  /// re-epoched master are fenced at the channel.
  void set_master_channel_handle(int handle) {
    master_channel_handle_ = handle;
  }
  int master_channel_handle() const { return master_channel_handle_; }
  uint64_t last_plan_seq() const { return last_plan_seq_; }

  /// Shrinks the shard size served to `worker_index` (straggler mitigation,
  /// paper Section 5.1). 0 restores the default size.
  Status SetWorkerShardLimit(int worker_index, uint64_t max_batches);

  /// Detects stragglers via the heartbeat monitor, applies shard-size
  /// mitigation to each, and returns how many were newly mitigated.
  int MitigateStragglers();

  /// Runs the OOM predictor against the hottest PS; if an OOM is predicted
  /// before job completion, migrates to PSes with the recommended memory.
  /// Returns true if a pre-scaling migration was initiated.
  bool MaybePreventOom();

  /// Kills workers whose pods are nominally Running but have been silent
  /// (no heartbeat) beyond the monitor's failure timeout — the half-dead
  /// pods the paper's job master reaps. The kill funnels through the normal
  /// crash path, so the shard is requeued with partial credit and the
  /// worker is replaced (with relaunch backoff). Returns how many were
  /// reaped.
  int ReapSilentWorkers();

  /// Make-before-break evacuation of pods on draining (cordoned) nodes. A
  /// draining PS triggers a whole-deployment seamless migration (staged pods
  /// land off the node because placement excludes cordoned nodes); draining
  /// workers each get a staged replacement that must reach Running — image
  /// pulled, container up — before the victim is stopped. Under scarcity
  /// (replacement unschedulable within drain_fallback_timeout, or repeated
  /// seamless aborts) the drain falls back to stop-and-restart. Returns how
  /// many evacuations were initiated. No-op when nothing is draining.
  int EvacuateDrainingPods();

  // --- Observers -----------------------------------------------------------
  JobState state() const { return state_; }
  const JobSpec& spec() const { return spec_; }
  const JobConfig& config() const { return config_; }
  const JobStats& stats() const { return stats_; }
  const std::vector<ThroughputSample>& history() const { return history_; }
  const EnvironmentProfile& environment() const { return env_; }
  const ModelProfile& model_profile() const { return profile_; }
  /// The in-memory flash-checkpoint tier; tests assert its async RDS flush
  /// accounting (flushed_bytes) on the migration/restart paths.
  const CacheStore& flash_cache() const { return cache_; }

  uint64_t batches_done() const;
  uint64_t total_batches() const { return spec_.total_steps; }
  double Progress() const {
    return static_cast<double>(batches_done()) /
           static_cast<double>(total_batches());
  }
  uint64_t RemainingSamples() const {
    return (total_batches() - batches_done()) * spec_.batch_size;
  }

  /// Measured throughput over the last profiling window (samples/sec).
  double MeasuredThroughput() const;
  /// Mean of the last `samples` non-zero profiling windows: shard-level
  /// completion quantization makes single windows noisy (+-15%), so
  /// schedulers should decide on this.
  double SmoothedThroughput(size_t samples = 6) const;
  /// Number of workers actively processing shards.
  int ActiveWorkerCount() const;
  /// Current memory usage of the most loaded PS.
  Bytes MaxPsMemory() const;
  /// Current model size (dense + embeddings), i.e., checkpoint payload.
  Bytes ModelBytes() const;

  /// True once the job reached a terminal state.
  bool finished() const {
    return state_ == JobState::kCompleted || state_ == JobState::kFailed;
  }

  /// Fired on completion/failure (after stats are final).
  std::function<void(TrainingJob&)> on_finished;

 private:
  struct WorkerState {
    int index = 0;
    PodId pod = 0;
    bool pod_running = false;
    bool retired = false;  // scaled down / replaced; kill is expected
    bool processing = false;
    std::optional<DataShard> shard;
    EventId completion_event = 0;
    SimTime shard_start = 0.0;
    Duration shard_duration = 0.0;
    uint64_t samples_done = 0;
    uint64_t shard_limit = 0;  // 0 = default size
    // Make-before-break drain bookkeeping: a replacement carries its
    // victim's index until the handoff; a victim is marked evacuating while
    // its replacement is staged.
    int replace_victim = -1;
    bool evacuating = false;
    // Static-partition mode: owned range.
    uint64_t part_cursor = 0;
    uint64_t part_end = 0;
  };
  struct PsState {
    int index = 0;
    PodId pod = 0;
    bool pod_running = false;
    bool retired = false;
    double share = 0.0;
  };

  // Pod lifecycle plumbing.
  void CreateWorkerPod(WorkerState& worker);
  void CreatePsPod(PsState& ps);
  void OnWorkerRunning(WorkerState& worker);
  void OnWorkerStopped(WorkerState& worker, PodStopReason reason);
  void OnPsRunning(PsState& ps);
  void OnPsStopped(PsState& ps, PodStopReason reason);
  bool AllPsRunning() const;
  /// Advances `streak` and returns how long to wait before the next
  /// relaunch of that role (0 when backoff is disabled).
  Duration NextRelaunchDelay(int* streak);
  WorkerState* FindWorkerByIndex(int index);
  /// Scarcity fallback for a stuck make-before-break handoff (see
  /// EvacuateDrainingPods).
  void DrainFallback(int victim_index, int replacement_index);

  // Training loop.
  void TryDispatchAll();
  void StartNextShard(WorkerState& worker);
  void OnShardComplete(WorkerState& worker);
  void InterruptWorker(WorkerState& worker);  // requeue with partial credit
  double WorkerIterTime(const WorkerState& worker) const;
  PsGroupState CurrentPsGroupState() const;
  /// Memoized ComputeIteration. The cache key is (cluster mutation version,
  /// job mutation version, active worker count); worker speed selects an
  /// entry within the cached generation. Any pod phase/speed change bumps
  /// the cluster version and any config/PS-set change bumps the job version,
  /// so a hit is guaranteed to be byte-identical to recomputing.
  IterationBreakdown CachedIteration(int active_workers,
                                     double worker_speed) const;
  /// Invalidates CachedIteration after job-side mutations (config change,
  /// PS set rebuilt, pods retired).
  void InvalidateIterationCache() { ++job_version_; }

  // Data accounting (mode-dependent).
  StatusOr<DataShard> NextShardFor(WorkerState& worker);
  void CommitShard(WorkerState& worker, const DataShard& shard);
  void ReturnShard(WorkerState& worker, uint64_t processed_batches);
  // Control-channel shard accounting: a completed shard's report arrives at
  // the master as an at-least-once message (the exactly-once queue rejects
  // duplicates); an expired reliable report requeues the shard.
  void DeliverShardReport(int worker_index, DataShard shard,
                          uint64_t samples_at_send);
  void ReclaimLostShard(DataShard shard);
  /// The worker's node id as a channel endpoint (0 if the pod is gone).
  int WorkerNodeEndpoint(const WorkerState& worker) const;
  /// Degraded-PS detector (DESIGN §15): when the whole worker group
  /// sustains a collapse vs the job's own best smoothed throughput — with
  /// no straggler flagged and no recent rescale — charge the PS nodes.
  void MaybeReportPsSlowdown();
  bool AllDataDone() const;
  void RepartitionStatic(uint64_t completed_prefix);

  // Transitions.
  void PauseTraining();
  void ResumeTraining();
  void BeginStopAndRestart(const JobConfig& new_config);
  void BeginSeamless(const JobConfig& new_config);
  void FinishMigrationIfReady();
  void AbortSeamlessIfStuck(uint64_t epoch);
  void RecoverFromPsLoss(PsState& ps, bool was_oom);
  void RestartFromCheckpoint(const std::string& why);
  void Complete();
  void FailJob(const std::string& reason);
  void KillAllPods(bool graceful);

  // Periodic work.
  void ProfileTick();
  void CheckpointTick();
  void UpdateMemoryAndUsage();
  Duration CheckpointWriteTime() const;
  Duration CheckpointReadTime() const;

  Simulator* sim_;
  Cluster* cluster_;
  JobSpec spec_;
  JobConfig config_;
  EnvironmentProfile env_;
  ModelProfile profile_;
  Rng rng_;

  JobState state_ = JobState::kInitializing;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::unique_ptr<PsState>> ps_;
  std::unique_ptr<ShardQueue> shard_queue_;  // dynamic mode
  uint64_t static_completed_ = 0;            // static mode: finished batches
  HeartbeatMonitor monitor_;
  OomPredictor oom_predictor_;
  RdsStore rds_;
  CacheStore cache_;
  CheckpointRecord last_checkpoint_;
  JobStats stats_;
  std::vector<ThroughputSample> history_;

  // Migration bookkeeping.
  enum class TransitionKind : int {
    kNone = 0,
    kStopRestart = 1,  // stop-and-restart migration or full restart
    kSeamless = 2,     // staged pods coming up while training continues
    kPsRecovery = 3,   // replacing a single lost PS
  };
  bool paused_ = false;
  TransitionKind transition_ = TransitionKind::kNone;
  std::optional<JobConfig> pending_config_;
  std::vector<std::unique_ptr<WorkerState>> staged_workers_;
  std::vector<std::unique_ptr<PsState>> staged_ps_;
  std::vector<std::unique_ptr<WorkerState>> retired_workers_;
  std::vector<std::unique_ptr<PsState>> retired_ps_;
  SimTime restart_kill_time_ = 0.0;
  /// Last OOM-prevention scale-up; throttles repeated bumps.
  SimTime last_oom_scale_ = -1.0e18;
  /// Monotone id for seamless migrations so timeout events can tell whether
  /// "their" migration is still in flight.
  uint64_t migration_epoch_ = 0;
  int next_worker_index_ = 0;
  int next_ps_index_ = 0;
  /// Consecutive relaunches without an intervening healthy start; feeds the
  /// exponential relaunch backoff.
  int worker_relaunch_streak_ = 0;
  int ps_relaunch_streak_ = 0;
  /// Consecutive seamless drain attempts that did not complete; after two,
  /// EvacuateDrainingPods falls back to stop-and-restart.
  int drain_attempts_ = 0;

  // Control-plane plan fencing + master routing (see ApplyPlanFenced).
  uint64_t last_plan_seq_ = 0;
  int master_channel_handle_ = -1;
  PlanGate master_plan_gate_;

  // Degraded-PS detector state: the job's best smoothed throughput since
  // the last disruption, and how many consecutive profile ticks the rate
  // has been collapsed below it (see MaybeReportPsSlowdown).
  double best_smoothed_ = 0.0;
  int ps_slowdown_streak_ = 0;
  SimTime last_disruption_ = 0.0;

  // Profiling window.
  uint64_t window_batches_ = 0;
  SimTime window_start_ = 0.0;
  double last_throughput_ = 0.0;

  // Iteration-law memoization (see CachedIteration). The group cache
  // replicates CurrentPsGroupState for the cached generation; entries map a
  // worker speed to its precomputed breakdown.
  struct IterCacheEntry {
    double speed = 0.0;
    IterationBreakdown iter;
  };
  uint64_t job_version_ = 0;
  mutable uint64_t iter_cache_cluster_version_ = ~uint64_t{0};
  mutable uint64_t iter_cache_job_version_ = ~uint64_t{0};
  mutable int iter_cache_active_ = -1;
  mutable PsGroupState group_cache_;
  mutable std::vector<IterCacheEntry> iter_cache_;
  // Reused scratch for UpdateMemoryAndUsage (avoids a per-tick allocation).
  mutable std::vector<PsState*> live_ps_scratch_;

  std::unique_ptr<PeriodicTask> profile_task_;
  std::unique_ptr<PeriodicTask> checkpoint_task_;
};

}  // namespace dlrover

#endif  // DLROVER_PS_TRAINING_JOB_H_
