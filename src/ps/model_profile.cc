#include "ps/model_profile.h"

#include <cmath>

namespace dlrover {

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kWideDeep:
      return "Model-X (Wide&Deep)";
    case ModelKind::kXDeepFm:
      return "Model-Y (xDeepFM)";
    case ModelKind::kDcn:
      return "Model-Z (DCN)";
  }
  return "unknown";
}

Bytes ModelProfile::EmbeddingBytesAt(double samples) const {
  const double phi = phi_max * (1.0 - std::exp(-samples / phi_n0));
  return bytes_per_category * phi;
}

ModelProfile GetModelProfile(ModelKind kind) {
  ModelProfile p;
  p.kind = kind;
  p.name = ModelKindName(kind);
  switch (kind) {
    case ModelKind::kWideDeep: {
      // Light dense part, medium embedding traffic.
      p.alpha_grad = 9.4e-4;
      p.beta_grad = 0.005;
      p.alpha_upd = 0.012;
      p.beta_upd = 0.002;
      p.alpha_sync = 0.050;
      p.beta_sync = 0.003;
      p.alpha_emb = 2.44e-5;
      p.beta_emb = 0.002;
      p.dense_param_bytes = MiB(100);
      p.embedding_dim = 16;
      p.phi_max = 2.8e8;
      p.phi_n0 = 6.0e7;
      p.bytes_per_category = 4.0 * 16 + 16;  // fp32 vector + adagrad slots
      p.ps_static_bytes = GiB(2);
      p.worker_static_bytes = GiB(4);
      break;
    }
    case ModelKind::kXDeepFm: {
      // CIN makes the dense part the heaviest of the three; wide embeddings.
      p.alpha_grad = 1.70e-3;
      p.beta_grad = 0.007;
      p.alpha_upd = 0.0128;
      p.beta_upd = 0.002;
      p.alpha_sync = 0.040;
      p.beta_sync = 0.003;
      p.alpha_emb = 1.95e-5;
      p.beta_emb = 0.003;
      p.dense_param_bytes = MiB(200);
      p.embedding_dim = 32;
      p.phi_max = 2.2e8;
      p.phi_n0 = 6.0e7;
      p.bytes_per_category = 4.0 * 32 + 16;
      p.ps_static_bytes = GiB(3);
      p.worker_static_bytes = GiB(5);
      break;
    }
    case ModelKind::kDcn: {
      // Cross layers: between X and Y in compute; medium embeddings.
      p.alpha_grad = 1.20e-3;
      p.beta_grad = 0.006;
      p.alpha_upd = 0.012;
      p.beta_upd = 0.002;
      p.alpha_sync = 0.045;
      p.beta_sync = 0.003;
      p.alpha_emb = 1.95e-5;
      p.beta_emb = 0.002;
      p.dense_param_bytes = MiB(150);
      p.embedding_dim = 24;
      p.phi_max = 2.5e8;
      p.phi_n0 = 6.0e7;
      p.bytes_per_category = 4.0 * 24 + 16;
      p.ps_static_bytes = GiB(2.5);
      p.worker_static_bytes = GiB(4);
      break;
    }
  }
  return p;
}

}  // namespace dlrover
