#include "ps/training_job.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cluster/control_channel.h"
#include "common/logging.h"

namespace dlrover {

namespace {
// Chunk size for static-partition processing events (same granularity as
// dynamic shards so the two modes are comparable in simulation cost).
constexpr uint64_t kStaticChunkBatches = 128;
// Time to re-partition and redistribute training data among workers after a
// static-mode restart (baseline frameworks re-shard the input pipeline).
constexpr Duration kRepartitionTime = Seconds(75);
}  // namespace

std::string JobStateName(JobState state) {
  switch (state) {
    case JobState::kInitializing:
      return "Initializing";
    case JobState::kRunning:
      return "Running";
    case JobState::kMigrating:
      return "Migrating";
    case JobState::kRestoring:
      return "Restoring";
    case JobState::kCompleted:
      return "Completed";
    case JobState::kFailed:
      return "Failed";
  }
  return "Unknown";
}

std::string JobConfig::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{w=%d, ps=%d, cpu_w=%.1f, cpu_ps=%.1f, mem_w=%.1fG, "
                "mem_ps=%.1fG}",
                num_workers, num_ps, worker_cpu, ps_cpu, ToGiB(worker_memory),
                ToGiB(ps_memory));
  return buf;
}

TrainingJob::TrainingJob(Simulator* sim, Cluster* cluster, const JobSpec& spec,
                         const JobConfig& initial_config,
                         const EnvironmentProfile& env)
    : sim_(sim),
      cluster_(cluster),
      spec_(spec),
      config_(initial_config),
      env_(env),
      profile_(GetModelProfile(spec.model)),
      rng_(spec.seed),
      monitor_(HeartbeatMonitorOptions{}) {
  if (spec_.data_mode == DataMode::kDynamicSharding) {
    ShardQueueOptions options;
    options.total_batches = spec_.total_steps;
    options.legacy_index = spec_.legacy_shard_index;
    shard_queue_ = std::make_unique<ShardQueue>(options);
  }
  if (spec_.history_reserve > 0) history_.reserve(spec_.history_reserve);
  stats_.submit_time = sim_->Now();
  last_checkpoint_.trained_batches = 0;
  last_checkpoint_.saved_at = sim_->Now();
  profile_task_ = std::make_unique<PeriodicTask>(
      sim_, spec_.profile_interval, [this] { ProfileTick(); });
  checkpoint_task_ = std::make_unique<PeriodicTask>(
      sim_, spec_.checkpoint_interval, [this] { CheckpointTick(); });
}

TrainingJob::~TrainingJob() {
  if (!finished()) {
    state_ = JobState::kFailed;
    stats_.fail_reason = "destroyed";
  }
  for (auto& w : workers_) {
    if (w->completion_event != 0) sim_->Cancel(w->completion_event);
  }
  for (auto& w : staged_workers_) {
    if (w->completion_event != 0) sim_->Cancel(w->completion_event);
  }
  KillAllPods(false);
}

void TrainingJob::Start() {
  for (int i = 0; i < config_.num_workers; ++i) {
    auto worker = std::make_unique<WorkerState>();
    worker->index = next_worker_index_++;
    workers_.push_back(std::move(worker));
    CreateWorkerPod(*workers_.back());
  }
  std::vector<double> shares = spec_.ps_shares;
  if (shares.empty() || static_cast<int>(shares.size()) != config_.num_ps) {
    shares.assign(static_cast<size_t>(config_.num_ps),
                  1.0 / std::max(1, config_.num_ps));
  } else {
    double total = 0.0;
    for (double s : shares) total += s;
    for (double& s : shares) s /= total;
  }
  for (int i = 0; i < config_.num_ps; ++i) {
    auto ps = std::make_unique<PsState>();
    ps->index = next_ps_index_++;
    ps->share = shares[static_cast<size_t>(i)];
    ps_.push_back(std::move(ps));
    CreatePsPod(*ps_.back());
  }
  if (spec_.data_mode == DataMode::kStaticPartition) {
    RepartitionStatic(0);
  }
  InvalidateIterationCache();
  profile_task_->Start();
  checkpoint_task_->Start();
}

void TrainingJob::CreateWorkerPod(WorkerState& worker) {
  PodSpec pod_spec;
  pod_spec.name = spec_.name + "-worker-" + std::to_string(worker.index);
  pod_spec.request = config_.WorkerRequest();
  pod_spec.priority = PriorityClass::kTraining;
  WorkerState* w = &worker;
  worker.pod = cluster_->CreatePod(
      std::move(pod_spec), [this, w](Pod&) { OnWorkerRunning(*w); },
      [this, w](Pod&, PodStopReason reason) { OnWorkerStopped(*w, reason); });
}

void TrainingJob::CreatePsPod(PsState& ps) {
  PodSpec pod_spec;
  pod_spec.name = spec_.name + "-ps-" + std::to_string(ps.index);
  pod_spec.request = config_.PsRequest();
  pod_spec.priority = PriorityClass::kTraining;
  PsState* p = &ps;
  ps.pod = cluster_->CreatePod(
      std::move(pod_spec), [this, p](Pod&) { OnPsRunning(*p); },
      [this, p](Pod&, PodStopReason reason) { OnPsStopped(*p, reason); });
}

bool TrainingJob::AllPsRunning() const {
  for (const auto& ps : ps_) {
    if (!ps->retired && !ps->pod_running) return false;
  }
  return !ps_.empty();
}

Duration TrainingJob::NextRelaunchDelay(int* streak) {
  const int attempt = ++*streak;
  if (spec_.relaunch_backoff_base <= 0.0) return 0.0;
  Duration delay = spec_.relaunch_backoff_base *
                   static_cast<double>(1ull << std::min(attempt - 1, 20));
  delay = std::min(delay, spec_.relaunch_backoff_cap);
  return delay * rng_.Uniform(0.5, 1.5);
}

void TrainingJob::OnWorkerRunning(WorkerState& worker) {
  worker.pod_running = true;
  worker_relaunch_streak_ = 0;  // a healthy start resets the backoff
  monitor_.AddMember(static_cast<uint64_t>(worker.index), sim_->Now());
  if (worker.replace_victim >= 0) {
    // Make-before-break handoff: the replacement is up (image pulled,
    // container running), so only now is the drain victim stopped.
    WorkerState* victim = FindWorkerByIndex(worker.replace_victim);
    worker.replace_victim = -1;
    if (victim != nullptr && !victim->retired) {
      InterruptWorker(*victim);  // shard requeued with partial credit
      victim->retired = true;
      victim->evacuating = false;
      if (victim->pod != 0) cluster_->KillPod(victim->pod);
      ++stats_.drain_migrations;
      InvalidateIterationCache();
    }
  }
  if (transition_ == TransitionKind::kSeamless) {
    FinishMigrationIfReady();
    // Old workers keep training; a staged worker does not dispatch yet.
    return;
  }
  TryDispatchAll();
}

void TrainingJob::OnPsRunning(PsState& ps) {
  ps.pod_running = true;
  ps_relaunch_streak_ = 0;  // a healthy start resets the backoff
  if (transition_ == TransitionKind::kSeamless) {
    FinishMigrationIfReady();
    return;
  }
  if (transition_ == TransitionKind::kPsRecovery && AllPsRunning()) {
    // Replacement PS is up: load the checkpoint, then resume.
    const Duration load = CheckpointReadTime();
    stats_.downtime_checkpoint += load;
    sim_->ScheduleAfter(load, [this] {
      if (finished()) return;
      transition_ = TransitionKind::kNone;
      state_ = JobState::kRunning;
      ResumeTraining();
    });
    return;
  }
  TryDispatchAll();
}

void TrainingJob::TryDispatchAll() {
  if (finished()) return;
  if (!AllPsRunning()) return;

  if (state_ == JobState::kInitializing ||
      transition_ == TransitionKind::kStopRestart) {
    // Stop-and-restart (or first start) waits for *all* workers as well.
    bool all_workers = !workers_.empty();
    for (const auto& w : workers_) {
      if (!w->retired && !w->pod_running) all_workers = false;
    }
    if (!all_workers) return;

    if (state_ == JobState::kInitializing) {
      stats_.first_training_time = sim_->Now();
      state_ = JobState::kRunning;
    } else {
      // Pods are up after a restart: charge the wait, load the checkpoint,
      // re-partition if static, then resume.
      stats_.downtime_waiting_pods += sim_->Now() - restart_kill_time_;
      Duration resume_delay = CheckpointReadTime();
      stats_.downtime_checkpoint += resume_delay;
      if (spec_.data_mode == DataMode::kStaticPartition) {
        resume_delay += kRepartitionTime;
        stats_.downtime_repartition += kRepartitionTime;
      }
      transition_ = TransitionKind::kNone;
      sim_->ScheduleAfter(resume_delay, [this] {
        if (finished()) return;
        state_ = JobState::kRunning;
        ResumeTraining();
      });
      return;
    }
  }

  if (paused_) return;
  for (auto& worker : workers_) {
    if (worker->pod_running && !worker->retired && !worker->processing) {
      StartNextShard(*worker);
    }
  }
}

StatusOr<DataShard> TrainingJob::NextShardFor(WorkerState& worker) {
  if (spec_.data_mode == DataMode::kDynamicSharding) {
    return shard_queue_->NextShard(worker.shard_limit);
  }
  if (worker.part_cursor >= worker.part_end) {
    return NotFoundError("partition exhausted");
  }
  DataShard shard;
  shard.index = 0;  // synthetic; static mode does not audit indices
  shard.start_batch = worker.part_cursor;
  shard.end_batch =
      std::min(worker.part_cursor + kStaticChunkBatches, worker.part_end);
  return shard;
}

void TrainingJob::StartNextShard(WorkerState& worker) {
  if (finished() || paused_ || !worker.pod_running || worker.retired) return;
  auto shard_or = NextShardFor(worker);
  if (!shard_or.ok()) {
    worker.processing = false;
    if (AllDataDone()) Complete();
    return;
  }
  worker.shard = *shard_or;
  worker.processing = true;
  worker.shard_start = sim_->Now();
  const double iter = WorkerIterTime(worker);
  const double noise = rng_.LogNormal(1.0, env_.timing_noise_sigma);
  worker.shard_duration =
      static_cast<double>(worker.shard->batches()) * iter * noise;
  WorkerState* w = &worker;
  worker.completion_event = sim_->ScheduleAfter(
      worker.shard_duration, [this, w] { OnShardComplete(*w); });
}

double TrainingJob::WorkerIterTime(const WorkerState& worker) const {
  const Pod* pod = cluster_->GetPod(worker.pod);
  const double speed = pod != nullptr ? pod->speed_factor : 1.0;
  if (!spec_.memoize_iteration) {
    return ComputeIteration(profile_, env_, spec_.batch_size,
                            ActiveWorkerCount(), config_, speed,
                            CurrentPsGroupState())
        .Total();
  }
  return CachedIteration(ActiveWorkerCount(), speed).Total();
}

IterationBreakdown TrainingJob::CachedIteration(int active_workers,
                                                double worker_speed) const {
  const uint64_t cluster_version = cluster_->mutation_version();
  if (cluster_version != iter_cache_cluster_version_ ||
      job_version_ != iter_cache_job_version_ ||
      active_workers != iter_cache_active_) {
    // New generation: rebuild the PS-group snapshot (exactly what
    // CurrentPsGroupState produces, reusing the vectors' capacity) and drop
    // the per-speed entries.
    group_cache_.shares.clear();
    group_cache_.speeds.clear();
    for (const auto& ps : ps_) {
      if (ps->retired) continue;
      const Pod* pod = cluster_->GetPod(ps->pod);
      group_cache_.shares.push_back(ps->share);
      group_cache_.speeds.push_back(pod != nullptr ? pod->speed_factor : 1.0);
    }
    if (group_cache_.shares.empty()) {
      group_cache_.shares.push_back(1.0);
      group_cache_.speeds.push_back(1.0);
    }
    iter_cache_.clear();
    iter_cache_cluster_version_ = cluster_version;
    iter_cache_job_version_ = job_version_;
    iter_cache_active_ = active_workers;
  }
  for (const IterCacheEntry& entry : iter_cache_) {
    if (entry.speed == worker_speed) return entry.iter;
  }
  // A generation rarely sees more than a couple of distinct speeds (healthy
  // 1.0 plus a straggler or two); cap the linear scan regardless.
  if (iter_cache_.size() >= 64) iter_cache_.clear();
  iter_cache_.push_back(IterCacheEntry{
      worker_speed,
      ComputeIteration(profile_, env_, spec_.batch_size, active_workers,
                       config_, worker_speed, group_cache_)});
  return iter_cache_.back().iter;
}

PsGroupState TrainingJob::CurrentPsGroupState() const {
  PsGroupState state;
  for (const auto& ps : ps_) {
    if (ps->retired) continue;
    const Pod* pod = cluster_->GetPod(ps->pod);
    state.shares.push_back(ps->share);
    state.speeds.push_back(pod != nullptr ? pod->speed_factor : 1.0);
  }
  if (state.shares.empty()) {
    state.shares.push_back(1.0);
    state.speeds.push_back(1.0);
  }
  return state;
}

void TrainingJob::OnShardComplete(WorkerState& worker) {
  worker.completion_event = 0;
  if (!worker.shard.has_value()) return;
  const DataShard shard = *worker.shard;
  worker.shard.reset();
  worker.processing = false;
  ControlChannel* ch = cluster_->control_channel();
  if (ch != nullptr && spec_.data_mode == DataMode::kDynamicSharding) {
    // Channel path: the completion report (which doubles as the liveness
    // heartbeat) rides the lossy control plane as a reliable at-least-once
    // send; the worker moves on to its next shard immediately, the way the
    // real worker does not wait for the master's bookkeeping. If every
    // copy is lost past the deadline, the sender-side recovery hook
    // requeues the shard (exactly-once is held by the queue either way).
    worker.samples_done += shard.batches() * spec_.batch_size;
    const int wi = worker.index;
    const uint64_t samples = worker.samples_done;
    ch->SendReliable(
        ControlMessageKind::kShardReport, WorkerNodeEndpoint(worker),
        ControlChannel::kMaster,
        [this, wi, shard, samples] { DeliverShardReport(wi, shard, samples); },
        [this, shard] { ReclaimLostShard(shard); });
    StartNextShard(worker);
    return;
  }
  CommitShard(worker, shard);
  worker.samples_done += shard.batches() * spec_.batch_size;
  monitor_.Heartbeat(static_cast<uint64_t>(worker.index), sim_->Now(),
                     worker.samples_done);
  if (AllDataDone()) {
    Complete();
    return;
  }
  StartNextShard(worker);
}

void TrainingJob::DeliverShardReport(int worker_index, DataShard shard,
                                     uint64_t samples_at_send) {
  if (finished()) return;
  // Every arriving copy is fresh liveness evidence; the monitor's
  // monotonic-timestamp and fence guards absorb duplicates and packets for
  // workers the master already gave up on.
  monitor_.Heartbeat(static_cast<uint64_t>(worker_index), sim_->Now(),
                     samples_at_send);
  if (spec_.data_mode != DataMode::kDynamicSharding) return;
  const Status status = shard_queue_->ReportCompleted(shard);
  if (!status.ok()) {
    // Duplicate copy, or a report for an index the master already retired
    // (requeued after expiry, restored from checkpoint, ...). The
    // exactly-once queue rejected it; nothing double-counts.
    ++stats_.shard_reports_rejected;
    return;
  }
  if (AllDataDone()) Complete();
}

void TrainingJob::ReclaimLostShard(DataShard shard) {
  if (finished() || spec_.data_mode != DataMode::kDynamicSharding) return;
  // The report's retry deadline passed with no acknowledgement. Requeue the
  // whole shard; if a copy did land (only the acks were lost), the index is
  // already retired and this is a safe rejected no-op.
  const Status status = shard_queue_->ReportFailed(shard, 0);
  if (!status.ok()) return;
  ++stats_.shard_reports_expired;
  if (!paused_ && state_ == JobState::kRunning) TryDispatchAll();
}

int TrainingJob::WorkerNodeEndpoint(const WorkerState& worker) const {
  const Pod* pod = cluster_->GetPod(worker.pod);
  return pod != nullptr ? static_cast<int>(pod->node) : 0;
}

void TrainingJob::CommitShard(WorkerState& worker, const DataShard& shard) {
  if (spec_.data_mode == DataMode::kDynamicSharding) {
    const Status status = shard_queue_->ReportCompleted(shard);
    if (!status.ok()) {
      DLROVER_LOG_STREAM(Warning)
          << spec_.name << ": shard completion rejected: " << status;
    }
  } else {
    static_completed_ += shard.batches();
    worker.part_cursor = shard.end_batch;
  }
}

void TrainingJob::ReturnShard(WorkerState& worker,
                              uint64_t processed_batches) {
  if (!worker.shard.has_value()) return;
  const DataShard shard = *worker.shard;
  worker.shard.reset();
  if (spec_.data_mode == DataMode::kDynamicSharding) {
    const Status status = shard_queue_->ReportFailed(shard, processed_batches);
    if (!status.ok()) {
      DLROVER_LOG_STREAM(Warning)
          << spec_.name << ": shard return rejected: " << status;
    }
  } else {
    static_completed_ += processed_batches;
    worker.part_cursor = shard.start_batch + processed_batches;
  }
  worker.samples_done += processed_batches * spec_.batch_size;
}

void TrainingJob::InterruptWorker(WorkerState& worker) {
  if (worker.completion_event != 0) {
    sim_->Cancel(worker.completion_event);
    worker.completion_event = 0;
  }
  if (worker.processing && worker.shard.has_value()) {
    const double elapsed = sim_->Now() - worker.shard_start;
    const double frac =
        worker.shard_duration > 0.0
            ? std::clamp(elapsed / worker.shard_duration, 0.0, 1.0)
            : 0.0;
    const uint64_t processed = static_cast<uint64_t>(
        frac * static_cast<double>(worker.shard->batches()));
    ReturnShard(worker, processed);
  }
  worker.processing = false;
}

bool TrainingJob::AllDataDone() const {
  if (spec_.data_mode == DataMode::kDynamicSharding) {
    return shard_queue_->AllDone();
  }
  return static_completed_ >= spec_.total_steps;
}

uint64_t TrainingJob::batches_done() const {
  if (spec_.data_mode == DataMode::kDynamicSharding) {
    return shard_queue_->completed_batches();
  }
  return static_completed_;
}

void TrainingJob::RepartitionStatic(uint64_t completed_prefix) {
  static_completed_ = completed_prefix;
  const uint64_t remaining = spec_.total_steps - completed_prefix;
  std::vector<WorkerState*> active;
  for (auto& w : workers_) {
    if (!w->retired) active.push_back(w.get());
  }
  if (active.empty()) return;
  const uint64_t per = remaining / active.size();
  uint64_t extra = remaining % active.size();
  uint64_t cursor = completed_prefix;
  for (WorkerState* w : active) {
    const uint64_t span = per + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    w->part_cursor = cursor;
    w->part_end = cursor + span;
    cursor += span;
  }
}

void TrainingJob::OnWorkerStopped(WorkerState& worker, PodStopReason reason) {
  InterruptWorker(worker);
  worker.pod_running = false;
  if (cluster_->control_channel() != nullptr) {
    // A lossy control plane can deliver this worker's in-flight heartbeats
    // after the master gave up on it; fence the id so a late packet cannot
    // resurrect a ghost member (worker indices are never reused).
    monitor_.FenceMember(static_cast<uint64_t>(worker.index));
  } else {
    monitor_.RemoveMember(static_cast<uint64_t>(worker.index));
  }
  // An owner-kill on a member we did NOT retire is an *external* deletion
  // (another controller / operator) — handle it like a crash. Every
  // job-initiated kill marks the member retired first.
  if (worker.retired || reason == PodStopReason::kCompleted || finished()) {
    return;
  }
  ++stats_.worker_failures;

  if (spec_.data_mode == DataMode::kDynamicSharding) {
    // The unfinished shard is already back in the queue; peers keep going.
    worker.retired = true;
    if (worker.replace_victim >= 0) {
      // A make-before-break replacement died before its handoff. If the
      // victim is still alive, clear its evacuating mark so a later drain
      // tick retries, and do not auto-replace (the victim is still
      // training). If the victim died meanwhile, this replacement *was* its
      // relaunch — fall through to the normal auto-replace path.
      WorkerState* victim = FindWorkerByIndex(worker.replace_victim);
      worker.replace_victim = -1;
      if (victim != nullptr && !victim->retired) {
        victim->evacuating = false;
        return;
      }
    } else if (worker.evacuating) {
      // A staged replacement is already on its way for this worker; it
      // becomes the relaunch, so skip the normal auto-replace (otherwise
      // the job would grow a worker).
      worker.evacuating = false;
      return;
    }
    if (spec_.auto_replace_failed_workers &&
        transition_ == TransitionKind::kNone) {
      const Duration delay = NextRelaunchDelay(&worker_relaunch_streak_);
      const uint64_t shard_limit = worker.shard_limit;
      auto relaunch = [this, shard_limit] {
        if (finished() || transition_ != TransitionKind::kNone) return;
        auto replacement = std::make_unique<WorkerState>();
        replacement->index = next_worker_index_++;
        replacement->shard_limit = shard_limit;
        workers_.push_back(std::move(replacement));
        CreateWorkerPod(*workers_.back());
      };
      if (delay <= 0.0) {
        relaunch();
      } else {
        // Crash-looping protection: wait out the backoff before asking the
        // scheduler again. Peers keep training; the replacement's absence
        // is still accounted as pod-wait downtime.
        stats_.downtime_waiting_pods += delay;
        sim_->ScheduleAfter(delay, relaunch);
      }
    }
  } else {
    // Static partitioning cannot absorb a lost worker: full restart.
    RestartFromCheckpoint("worker loss under static partitioning");
  }
}

void TrainingJob::OnPsStopped(PsState& ps, PodStopReason reason) {
  ps.pod_running = false;
  if (ps.retired || reason == PodStopReason::kCompleted || finished()) {
    return;
  }
  ++stats_.ps_failures;
  const bool was_oom = reason == PodStopReason::kOomKill;
  if (was_oom) ++stats_.oom_events;

  if (spec_.data_mode == DataMode::kDynamicSharding &&
      transition_ == TransitionKind::kNone) {
    RecoverFromPsLoss(ps, was_oom);
  } else {
    RestartFromCheckpoint(was_oom ? "ps oom" : "ps loss");
  }
}

void TrainingJob::RecoverFromPsLoss(PsState& ps, bool was_oom) {
  state_ = JobState::kRestoring;
  transition_ = TransitionKind::kPsRecovery;
  PauseTraining();
  // Parameters on the lost PS are gone: training rolls back to the last
  // checkpoint (flash-checkpoint keeps this window tiny).
  if (spec_.data_mode == DataMode::kDynamicSharding) {
    shard_queue_->FastForwardTo(last_checkpoint_.trained_batches);
  }
  if (was_oom) {
    // Reactive vertical scale so the replacement does not die again.
    config_.ps_memory =
        std::max(config_.ps_memory * 1.5, MaxPsMemory() * 1.3);
  }
  const Duration delay = NextRelaunchDelay(&ps_relaunch_streak_);
  if (delay <= 0.0) {
    CreatePsPod(ps);  // reuse the same logical PS (same share)
  } else {
    stats_.downtime_waiting_pods += delay;
    PsState* p = &ps;
    sim_->ScheduleAfter(delay, [this, p] {
      // A full restart in the meantime rebuilt the PS set; this recovery
      // (and its PsState) is void then.
      if (finished() || transition_ != TransitionKind::kPsRecovery) return;
      CreatePsPod(*p);
    });
  }
  InvalidateIterationCache();
}

void TrainingJob::RestartFromCheckpoint(const std::string& why) {
  if (finished()) return;
  ++stats_.full_restarts;
  if (stats_.full_restarts > spec_.max_restarts) {
    FailJob("restart budget exhausted: " + why);
    return;
  }
  state_ = JobState::kRestoring;
  transition_ = TransitionKind::kStopRestart;
  PauseTraining();

  // Roll data consumption back to the checkpoint.
  if (spec_.data_mode == DataMode::kDynamicSharding) {
    shard_queue_->FastForwardTo(last_checkpoint_.trained_batches);
  } else {
    static_completed_ = last_checkpoint_.trained_batches;
  }

  KillAllPods(false);
  restart_kill_time_ = sim_->Now();

  // A seamless migration interrupted by this restart leaves staged pods
  // behind; retire them so they cannot wedge a future migration.
  for (auto& w : staged_workers_) retired_workers_.push_back(std::move(w));
  staged_workers_.clear();
  for (auto& p : staged_ps_) retired_ps_.push_back(std::move(p));
  staged_ps_.clear();
  pending_config_.reset();
  ++migration_epoch_;

  // Fresh pod sets with the current configuration.
  workers_.clear();
  ps_.clear();
  for (int i = 0; i < config_.num_workers; ++i) {
    auto worker = std::make_unique<WorkerState>();
    worker->index = next_worker_index_++;
    workers_.push_back(std::move(worker));
    CreateWorkerPod(*workers_.back());
  }
  for (int i = 0; i < config_.num_ps; ++i) {
    auto psn = std::make_unique<PsState>();
    psn->index = next_ps_index_++;
    psn->share = 1.0 / config_.num_ps;
    ps_.push_back(std::move(psn));
    CreatePsPod(*ps_.back());
  }
  if (spec_.data_mode == DataMode::kStaticPartition) {
    RepartitionStatic(static_completed_);
  }
  InvalidateIterationCache();
}

Status TrainingJob::ApplyPlan(const JobConfig& new_config,
                              MigrationMode mode) {
  if (finished()) return FailedPreconditionError("job already finished");
  if (state_ != JobState::kRunning) {
    return FailedPreconditionError("job is not in a steady running state");
  }
  if (new_config.num_workers < 1 || new_config.num_ps < 1) {
    return InvalidArgumentError("plan must keep at least 1 worker and 1 ps");
  }

  const bool worker_count_only =
      new_config.num_ps == config_.num_ps &&
      new_config.worker_cpu == config_.worker_cpu &&
      new_config.ps_cpu == config_.ps_cpu &&
      new_config.worker_memory == config_.worker_memory &&
      new_config.ps_memory == config_.ps_memory &&
      new_config.num_workers != config_.num_workers;

  if (worker_count_only && mode == MigrationMode::kSeamless &&
      spec_.data_mode == DataMode::kDynamicSharding) {
    // Fast elasticity: workers join/leave the shards queue with no pause.
    ++stats_.scale_operations;
    const int delta = new_config.num_workers - config_.num_workers;
    if (delta > 0) {
      for (int i = 0; i < delta; ++i) {
        auto worker = std::make_unique<WorkerState>();
        worker->index = next_worker_index_++;
        workers_.push_back(std::move(worker));
        CreateWorkerPod(*workers_.back());
      }
    } else {
      int to_remove = -delta;
      for (auto it = workers_.rbegin();
           it != workers_.rend() && to_remove > 0; ++it) {
        WorkerState& w = **it;
        if (w.retired) continue;
        InterruptWorker(w);
        w.retired = true;
        cluster_->KillPod(w.pod);
        --to_remove;
      }
    }
    config_.num_workers = new_config.num_workers;
    InvalidateIterationCache();
    // The worker group just changed size: the throughput baseline moves.
    last_disruption_ = sim_->Now();
    best_smoothed_ = 0.0;
    ps_slowdown_streak_ = 0;
    return Status::OK();
  }

  if (mode == MigrationMode::kStopAndRestart) {
    BeginStopAndRestart(new_config);
  } else {
    BeginSeamless(new_config);
  }
  return Status::OK();
}

Status TrainingJob::ApplyPlanFenced(const JobConfig& new_config,
                                    MigrationMode mode, uint64_t plan_seq) {
  ControlChannel* ch = cluster_->control_channel();
  if (ch != nullptr && plan_seq <= last_plan_seq_ && last_plan_seq_ != 0) {
    if (ch->fencing_enabled()) {
      ++stats_.plans_fenced;
      ch->NotePlanFenced(spec_.seed, plan_seq);
      return FailedPreconditionError(
          "stale plan fenced: seq <= last applied plan");
    }
    // Fencing off (the unprotected arm): the stale plan applies like any
    // other, and each successful stale apply is counted as a hazard.
    const Status status = ApplyPlan(new_config, mode);
    if (status.ok()) {
      ++stats_.stale_plan_applies;
      ch->NoteStalePlanApplied(spec_.seed, plan_seq);
    }
    return status;
  }
  const Status status = ApplyPlan(new_config, mode);
  if (status.ok()) last_plan_seq_ = std::max(last_plan_seq_, plan_seq);
  return status;
}

Status TrainingJob::DeliverPlanFromBrain(const JobConfig& new_config,
                                         MigrationMode mode,
                                         uint64_t plan_seq) {
  if (master_plan_gate_) return master_plan_gate_(new_config, mode, plan_seq);
  return ApplyPlanFenced(new_config, mode, plan_seq);
}

void TrainingJob::BeginStopAndRestart(const JobConfig& new_config) {
  ++stats_.migrations;
  state_ = JobState::kMigrating;
  transition_ = TransitionKind::kStopRestart;
  PauseTraining();

  // Save a checkpoint on the critical path (paper: 5-10 min to RDS).
  const Duration save = CheckpointWriteTime();
  stats_.downtime_checkpoint += save;
  sim_->ScheduleAfter(save, [this, new_config] {
    if (finished()) return;
    last_checkpoint_.saved_at = sim_->Now();
    last_checkpoint_.trained_batches = batches_done();
    last_checkpoint_.bytes = ModelBytes();
    last_checkpoint_.store = spec_.use_flash_checkpoint ? cache_.name()
                                                        : rds_.name();
    // The flash tier persists to RDS off the critical path; without this
    // the migration checkpoint would exist only in volatile memory.
    if (spec_.use_flash_checkpoint) {
      cache_.AsyncFlushToRds(last_checkpoint_.bytes);
    }
    KillAllPods(false);
    restart_kill_time_ = sim_->Now();
    config_ = new_config;
    InvalidateIterationCache();
    workers_.clear();
    ps_.clear();
    for (int i = 0; i < config_.num_workers; ++i) {
      auto worker = std::make_unique<WorkerState>();
      worker->index = next_worker_index_++;
      workers_.push_back(std::move(worker));
      CreateWorkerPod(*workers_.back());
    }
    for (int i = 0; i < config_.num_ps; ++i) {
      auto psn = std::make_unique<PsState>();
      psn->index = next_ps_index_++;
      psn->share = 1.0 / config_.num_ps;
      ps_.push_back(std::move(psn));
      CreatePsPod(*ps_.back());
    }
    if (spec_.data_mode == DataMode::kStaticPartition) {
      RepartitionStatic(static_completed_);
    }
  });
}

void TrainingJob::BeginSeamless(const JobConfig& new_config) {
  state_ = JobState::kMigrating;
  transition_ = TransitionKind::kSeamless;
  pending_config_ = new_config;
  // Watchdog: if the staged deployment cannot be scheduled (capacity,
  // oversized pods), abort and keep training on the old pods rather than
  // wedging the job in kMigrating forever.
  const uint64_t epoch = ++migration_epoch_;
  sim_->ScheduleAfter(Minutes(12),
                      [this, epoch] { AbortSeamlessIfStuck(epoch); });
  // Stage the full replacement deployment; old pods keep training.
  for (int i = 0; i < new_config.num_workers; ++i) {
    auto worker = std::make_unique<WorkerState>();
    worker->index = next_worker_index_++;
    staged_workers_.push_back(std::move(worker));
    WorkerState& w = *staged_workers_.back();
    PodSpec pod_spec;
    pod_spec.name = spec_.name + "-worker-" + std::to_string(w.index);
    pod_spec.request = new_config.WorkerRequest();
    pod_spec.priority = PriorityClass::kTraining;
    WorkerState* wp = &w;
    w.pod = cluster_->CreatePod(
        std::move(pod_spec), [this, wp](Pod&) { OnWorkerRunning(*wp); },
        [this, wp](Pod&, PodStopReason reason) {
          OnWorkerStopped(*wp, reason);
        });
  }
  for (int i = 0; i < new_config.num_ps; ++i) {
    auto psn = std::make_unique<PsState>();
    psn->index = next_ps_index_++;
    psn->share = 1.0 / new_config.num_ps;
    staged_ps_.push_back(std::move(psn));
    PsState& p = *staged_ps_.back();
    PodSpec pod_spec;
    pod_spec.name = spec_.name + "-ps-" + std::to_string(p.index);
    pod_spec.request = new_config.PsRequest();
    pod_spec.priority = PriorityClass::kTraining;
    PsState* pp = &p;
    p.pod = cluster_->CreatePod(
        std::move(pod_spec), [this, pp](Pod&) { OnPsRunning(*pp); },
        [this, pp](Pod&, PodStopReason reason) { OnPsStopped(*pp, reason); });
  }
}

void TrainingJob::AbortSeamlessIfStuck(uint64_t epoch) {
  if (finished()) return;
  if (transition_ != TransitionKind::kSeamless) return;
  if (epoch != migration_epoch_) return;  // that migration already ended
  for (auto& w : staged_workers_) {
    w->retired = true;
    if (w->pod != 0) cluster_->KillPod(w->pod);
    retired_workers_.push_back(std::move(w));
  }
  staged_workers_.clear();
  for (auto& p : staged_ps_) {
    p->retired = true;
    if (p->pod != 0) cluster_->KillPod(p->pod);
    retired_ps_.push_back(std::move(p));
  }
  staged_ps_.clear();
  pending_config_.reset();
  transition_ = TransitionKind::kNone;
  state_ = JobState::kRunning;
  DLROVER_LOG_STREAM(Warning)
      << spec_.name << ": seamless migration timed out; reverted";
}

void TrainingJob::FinishMigrationIfReady() {
  if (transition_ != TransitionKind::kSeamless) return;
  for (const auto& w : staged_workers_) {
    if (!w->pod_running) return;
  }
  for (const auto& p : staged_ps_) {
    if (!p->pod_running) return;
  }
  // Everything staged is up: pause, hand over state via flash-checkpoint,
  // swap pod sets, resume. Only the checkpoint handoff pauses training.
  ++migration_epoch_;  // staged set is complete: disarm the watchdog
  PauseTraining();
  const Duration save = CheckpointWriteTime();
  const Duration load = CheckpointReadTime();
  stats_.downtime_checkpoint += save + load;
  if (spec_.use_flash_checkpoint) {
    cache_.AsyncFlushToRds(ModelBytes());
  }
  sim_->ScheduleAfter(save + load, [this] {
    if (finished()) return;
    last_checkpoint_.saved_at = sim_->Now();
    last_checkpoint_.trained_batches = batches_done();
    last_checkpoint_.bytes = ModelBytes();
    last_checkpoint_.store =
        spec_.use_flash_checkpoint ? cache_.name() : rds_.name();

    for (auto& w : workers_) {
      if (!w->retired) {
        InterruptWorker(*w);
        w->retired = true;
        cluster_->KillPod(w->pod);
      }
      retired_workers_.push_back(std::move(w));
    }
    workers_.clear();
    for (auto& p : ps_) {
      if (!p->retired) {
        p->retired = true;
        cluster_->KillPod(p->pod);
      }
      retired_ps_.push_back(std::move(p));
    }
    ps_.clear();

    workers_ = std::move(staged_workers_);
    staged_workers_.clear();
    ps_ = std::move(staged_ps_);
    staged_ps_.clear();
    config_ = *pending_config_;
    pending_config_.reset();
    InvalidateIterationCache();
    ++stats_.migrations;
    transition_ = TransitionKind::kNone;
    state_ = JobState::kRunning;
    ResumeTraining();
  });
}

void TrainingJob::PauseTraining() {
  if (paused_) return;
  paused_ = true;
  for (auto& w : workers_) InterruptWorker(*w);
}

void TrainingJob::ResumeTraining() {
  if (!paused_) return;
  paused_ = false;
  // Any pause (migration, recovery, restart) legitimately moves the job's
  // throughput baseline: re-learn the best rate before trusting the
  // degraded-PS collapse detector again.
  last_disruption_ = sim_->Now();
  best_smoothed_ = 0.0;
  ps_slowdown_streak_ = 0;
  TryDispatchAll();
}

Status TrainingJob::SetWorkerShardLimit(int worker_index,
                                        uint64_t max_batches) {
  for (auto& w : workers_) {
    if (w->index == worker_index && !w->retired) {
      w->shard_limit = max_batches;
      return Status::OK();
    }
  }
  return NotFoundError("no active worker with that index");
}

int TrainingJob::MitigateStragglers() {
  // Straggler *detection* is heartbeat bookkeeping and works in every data
  // mode; only the shard-limit *mitigation* below needs dynamic sharding.
  // Static-partition jobs still feed node-health evidence — a degraded node
  // must not go unnoticed just because its resident jobs cannot rebalance.
  const bool can_mitigate = spec_.data_mode == DataMode::kDynamicSharding;
  if (!can_mitigate && !cluster_->node_health_enabled()) return 0;
  const std::vector<uint64_t> stragglers =
      monitor_.DetectStragglers(sim_->Now());
  int mitigated = 0;
  if (can_mitigate) {
    for (uint64_t id : stragglers) {
      ShardQueueOptions defaults;
      const uint64_t small = std::max<uint64_t>(
          defaults.min_shard_batches, defaults.default_shard_batches / 8);
      if (SetWorkerShardLimit(static_cast<int>(id), small).ok()) {
        ++mitigated;
        ++stats_.stragglers_mitigated;
      }
    }
  }
  // Node-health evidence: every member the monitor currently holds a
  // straggler verdict against charges its node each tick, so a degraded
  // node keeps accumulating suspicion until it is cordoned. Gated on the
  // cluster's control plane so the default configuration is untouched.
  if (cluster_->node_health_enabled()) {
    ControlChannel* ch = cluster_->control_channel();
    for (const auto& [member, health] : monitor_.members()) {
      if (!health.flagged_straggler) continue;
      for (auto& w : workers_) {
        if (static_cast<uint64_t>(w->index) != member) continue;
        if (!w->retired && w->pod_running) {
          if (ch != nullptr) {
            // Verdicts cross the master -> brain hop, so a cell partition
            // (brain unreachable) delays or loses them; the per-tick
            // re-report from this loop makes the evidence self-healing.
            const PodId pod = w->pod;
            ch->Send(ControlMessageKind::kStragglerVerdict,
                     ControlChannel::kMaster, ControlChannel::kBrain,
                     [this, pod] { cluster_->ReportStragglerEvidence(pod); });
          } else {
            cluster_->ReportStragglerEvidence(w->pod);
          }
        }
        break;
      }
    }
  }
  return mitigated;
}

int TrainingJob::ReapSilentWorkers() {
  if (state_ != JobState::kRunning || paused_ ||
      transition_ != TransitionKind::kNone) {
    return 0;
  }
  const std::vector<uint64_t> silent = monitor_.DetectFailures(sim_->Now());
  int reaped = 0;
  for (uint64_t member : silent) {
    for (auto& w : workers_) {
      if (static_cast<uint64_t>(w->index) != member) continue;
      if (w->retired || !w->pod_running) break;
      // The pod claims Running but reports nothing — half-dead. Kill it;
      // OnWorkerStopped treats the owner-kill of a non-retired member as a
      // crash, so the shard is requeued with partial credit and the worker
      // replaced through the normal (backoff-aware) path.
      cluster_->KillPod(w->pod);
      ++reaped;
      break;
    }
  }
  return reaped;
}

TrainingJob::WorkerState* TrainingJob::FindWorkerByIndex(int index) {
  for (auto& w : workers_) {
    if (w->index == index) return w.get();
  }
  return nullptr;
}

int TrainingJob::EvacuateDrainingPods() {
  if (finished() || paused_ || state_ != JobState::kRunning ||
      transition_ != TransitionKind::kNone) {
    return 0;
  }
  // A draining PS cannot be replaced one-for-one (its parameter shard must
  // move), so the whole deployment migrates seamlessly: staged pods land off
  // the node because placement excludes cordoned nodes, and training pauses
  // only for the checkpoint handoff.
  bool ps_draining = false;
  for (const auto& ps : ps_) {
    if (ps->retired || ps->pod == 0) continue;
    const Pod* pod = cluster_->GetPod(ps->pod);
    if (pod != nullptr && !pod->terminal() && cluster_->IsDraining(pod->node)) {
      ps_draining = true;
      break;
    }
  }
  if (ps_draining) {
    if (drain_attempts_ >= 2) {
      // Two seamless attempts aborted (staged pods unschedulable under
      // scarcity): stop-and-restart frees the job's capacity first, so the
      // rebuild cannot be starved by the job's own footprint.
      drain_attempts_ = 0;
      ++stats_.drain_fallbacks;
      if (ApplyPlan(config_, MigrationMode::kStopAndRestart).ok()) {
        ++stats_.drain_migrations;
        return 1;
      }
      return 0;
    }
    ++drain_attempts_;
    if (ApplyPlan(config_, MigrationMode::kSeamless).ok()) return 1;
    return 0;
  }
  drain_attempts_ = 0;
  // Workers evacuate one-for-one, make-before-break: stage a replacement
  // now, stop the victim only when it reaches Running (see OnWorkerRunning).
  int staged = 0;
  const size_t count = workers_.size();  // replacements append; skip them
  for (size_t i = 0; i < count; ++i) {
    WorkerState& victim = *workers_[i];
    if (victim.retired || !victim.pod_running || victim.evacuating ||
        victim.replace_victim >= 0) {
      continue;
    }
    const Pod* pod = cluster_->GetPod(victim.pod);
    if (pod == nullptr || pod->terminal()) continue;
    if (!cluster_->IsDraining(pod->node)) continue;
    victim.evacuating = true;
    auto replacement = std::make_unique<WorkerState>();
    replacement->index = next_worker_index_++;
    replacement->shard_limit = victim.shard_limit;
    replacement->replace_victim = victim.index;
    workers_.push_back(std::move(replacement));
    CreateWorkerPod(*workers_.back());
    // Scarcity fallback: if the replacement has not reached Running by the
    // deadline, give up on make-before-break for this worker.
    const int victim_index = victim.index;
    const int repl_index = workers_.back()->index;
    sim_->ScheduleAfter(spec_.drain_fallback_timeout,
                        [this, victim_index, repl_index] {
                          DrainFallback(victim_index, repl_index);
                        });
    ++staged;
  }
  return staged;
}

void TrainingJob::DrainFallback(int victim_index, int replacement_index) {
  if (finished() || transition_ != TransitionKind::kNone) return;
  WorkerState* replacement = FindWorkerByIndex(replacement_index);
  // Handoff already happened, the replacement died (its stop handler reset
  // the victim), or a restart rebuilt the worker set: nothing to do.
  if (replacement == nullptr || replacement->retired ||
      replacement->pod_running || replacement->replace_victim < 0) {
    return;
  }
  // Still pending after the deadline: scarcity. Abandon make-before-break —
  // retire the stuck replacement and stop-and-restart the victim through the
  // normal crash path (auto-replace, backoff-aware, off-node placement).
  ++stats_.drain_fallbacks;
  replacement->retired = true;
  replacement->replace_victim = -1;
  if (replacement->pod != 0) cluster_->KillPod(replacement->pod);
  WorkerState* victim = FindWorkerByIndex(victim_index);
  if (victim != nullptr && !victim->retired) {
    victim->evacuating = false;
    if (victim->pod != 0) cluster_->KillPod(victim->pod);
  }
}

bool TrainingJob::MaybePreventOom() {
  if (state_ != JobState::kRunning) return false;
  // Each scale-up must buy a quiet period: without a cooldown the trigger
  // threshold (0.9x limit) catches up with the fresh headroom within a few
  // ticks and the job churns through migrations.
  if (sim_->Now() - last_oom_scale_ < Minutes(12)) return false;
  const double throughput = MeasuredThroughput();
  if (throughput <= 0.0) return false;
  const double remaining_sec =
      static_cast<double>(RemainingSamples()) / throughput;
  // Size for the nearer of job completion and a fixed lookahead window:
  // seamless flash-checkpoint migrations are cheap, so growing memory in
  // steps keeps the allocation tracking actual usage (high MUR) instead of
  // paying the whole end-of-job footprint up front.
  const Duration lookahead = Minutes(45);
  const SimTime horizon = sim_->Now() + std::min(remaining_sec, lookahead);
  const auto recommended =
      oom_predictor_.RecommendLimit(config_.ps_memory, horizon);
  if (!recommended.has_value()) return false;

  // No node can host a pod bigger than itself: when the projected per-PS
  // footprint exceeds what a node offers, scale the PS group *out* so the
  // rebalanced shares shrink each server's slice (paper Section 5.3:
  // "scales the PSes with larger memory capacity").
  const Bytes pod_cap = cluster_->options().node_capacity.memory * 0.85;
  JobConfig new_config = config_;
  Bytes per_ps = *recommended;
  if (per_ps > pod_cap) {
    const int new_p = static_cast<int>(
        std::ceil(static_cast<double>(config_.num_ps) * per_ps / pod_cap));
    new_config.num_ps = std::min(new_p, 16);
    per_ps = std::min(
        pod_cap, per_ps * static_cast<double>(config_.num_ps) /
                     static_cast<double>(new_config.num_ps) * 1.2);
  }
  new_config.ps_memory = per_ps;
  const bool applied = ApplyPlan(new_config, MigrationMode::kSeamless).ok();
  if (applied) last_oom_scale_ = sim_->Now();
  return applied;
}

void TrainingJob::Complete() {
  if (finished()) return;
  state_ = JobState::kCompleted;
  stats_.finish_time = sim_->Now();
  profile_task_->Stop();
  checkpoint_task_->Stop();
  KillAllPods(true);
  if (on_finished) on_finished(*this);
}

void TrainingJob::FailJob(const std::string& reason) {
  if (finished()) return;
  state_ = JobState::kFailed;
  stats_.finish_time = sim_->Now();
  stats_.fail_reason = reason;
  profile_task_->Stop();
  checkpoint_task_->Stop();
  KillAllPods(false);
  if (on_finished) on_finished(*this);
}

void TrainingJob::KillAllPods(bool graceful) {
  // Two passes: killing a pod can cascade (freed capacity -> placements ->
  // preemptions) into stop callbacks for *this job's other pods*. Marking
  // everything retired first makes those callbacks no-ops, so the kill loop
  // cannot re-enter restart/recovery logic mid-iteration.
  auto retire_all = [](auto& members) {
    for (auto& m : members) m->retired = true;
  };
  retire_all(workers_);
  retire_all(ps_);
  retire_all(staged_workers_);
  retire_all(staged_ps_);
  InvalidateIterationCache();
  auto kill_all = [&](auto& members) {
    for (auto& m : members) {
      if (m->pod != 0) cluster_->KillPod(m->pod, graceful);
    }
  };
  kill_all(workers_);
  kill_all(ps_);
  kill_all(staged_workers_);
  kill_all(staged_ps_);
}

int TrainingJob::ActiveWorkerCount() const {
  int count = 0;
  for (const auto& w : workers_) {
    if (w->pod_running && !w->retired) ++count;
  }
  return count;
}

Bytes TrainingJob::MaxPsMemory() const {
  // Memory is spread evenly across PSes: a "hot" PS is a *compute*
  // hotspot (frequently accessed tensors), not necessarily a larger slice
  // of rows; OOM pressure comes from table growth and undersized limits.
  const Bytes emb = profile_.EmbeddingBytesAt(
      static_cast<double>(batches_done()) *
      static_cast<double>(spec_.batch_size));
  int live = 0;
  for (const auto& ps : ps_) {
    if (!ps->retired) ++live;
  }
  if (live == 0) return profile_.ps_static_bytes;
  return profile_.ps_static_bytes + emb / static_cast<double>(live);
}

Bytes TrainingJob::ModelBytes() const {
  return profile_.dense_param_bytes +
         profile_.EmbeddingBytesAt(static_cast<double>(batches_done()) *
                                   static_cast<double>(spec_.batch_size));
}

double TrainingJob::MeasuredThroughput() const { return last_throughput_; }

double TrainingJob::SmoothedThroughput(size_t samples) const {
  double sum = 0.0;
  size_t count = 0;
  for (auto it = history_.rbegin(); it != history_.rend() && count < samples;
       ++it) {
    if (it->samples_per_sec <= 0.0) continue;
    sum += it->samples_per_sec;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

Duration TrainingJob::CheckpointWriteTime() const {
  return spec_.use_flash_checkpoint ? cache_.WriteTime(ModelBytes())
                                    : rds_.WriteTime(ModelBytes());
}

Duration TrainingJob::CheckpointReadTime() const {
  return spec_.use_flash_checkpoint ? cache_.ReadTime(ModelBytes())
                                    : rds_.ReadTime(ModelBytes());
}

void TrainingJob::CheckpointTick() {
  if (finished()) return;
  // Training continues during a seamless migration, so checkpoints must
  // too; only hard transitions (restart / PS recovery) skip ticks.
  const bool training_live =
      state_ == JobState::kRunning ||
      (state_ == JobState::kMigrating &&
       transition_ == TransitionKind::kSeamless);
  if (!training_live) return;
  // Periodic fault-tolerance checkpoints run asynchronously (snapshot is
  // consistent as of now, becomes durable after the write completes).
  const uint64_t batches = batches_done();
  const Bytes bytes = ModelBytes();
  const Duration write = CheckpointWriteTime();
  sim_->ScheduleAfter(write, [this, batches, bytes] {
    if (finished()) return;
    if (batches >= last_checkpoint_.trained_batches) {
      last_checkpoint_.saved_at = sim_->Now();
      last_checkpoint_.trained_batches = batches;
      last_checkpoint_.bytes = bytes;
      last_checkpoint_.store =
          spec_.use_flash_checkpoint ? cache_.name() : rds_.name();
    }
  });
  if (spec_.use_flash_checkpoint) cache_.AsyncFlushToRds(bytes);
}

void TrainingJob::UpdateMemoryAndUsage() {
  const Bytes emb = profile_.EmbeddingBytesAt(
      static_cast<double>(batches_done()) *
      static_cast<double>(spec_.batch_size));
  const int active = std::max(1, ActiveWorkerCount());
  const bool memoize = spec_.memoize_iteration;
  // Unmemoized path keeps its own group copy; the memoized path reuses the
  // cache's snapshot (valid for this tick once CachedIteration ran).
  PsGroupState local_group;
  if (!memoize) local_group = CurrentPsGroupState();
  const IterationBreakdown healthy =
      memoize ? CachedIteration(active, 1.0)
              : ComputeIteration(profile_, env_, spec_.batch_size, active,
                                 config_, 1.0, local_group);
  const PsGroupState& group = memoize ? group_cache_ : local_group;
  const double t_iter = std::max(1e-9, healthy.Total());

  // Parameter servers: memory tracks embedding growth; CPU tracks the share
  // of the iteration spent in updates + lookups, scaled by each PS's load
  // relative to a balanced peer.
  const double balanced_inv_p =
      1.0 / std::max<size_t>(1, group.shares.size());
  std::vector<PsState*>& live_ps = live_ps_scratch_;
  live_ps.clear();
  for (auto& ps : ps_) {
    if (!ps->retired && ps->pod_running) live_ps.push_back(ps.get());
  }
  for (PsState* ps : live_ps) {
    Pod* pod = cluster_->GetMutablePod(ps->pod);
    if (pod == nullptr) continue;
    const double speed = std::max(1e-3, pod->speed_factor);
    const double relative_load =
        (ps->share / speed) / std::max(1e-9, balanced_inv_p);
    const double busy =
        std::clamp((healthy.t_upd + healthy.t_emb) / t_iter * relative_load,
                   0.0, 1.0);
    ResourceSpec usage;
    usage.cpu = std::min(config_.ps_cpu, profile_.max_ps_parallelism) * busy;
    usage.memory =
        profile_.ps_static_bytes + emb / static_cast<double>(live_ps.size());
    cluster_->ReportUsage(ps->pod, usage);
  }

  // Workers: CPU busy during gradient computation; memory is a working set.
  for (auto& w : workers_) {
    if (w->retired || !w->pod_running) continue;
    Pod* pod = cluster_->GetMutablePod(w->pod);
    if (pod == nullptr) continue;
    const IterationBreakdown mine =
        memoize ? CachedIteration(active, pod->speed_factor)
                : ComputeIteration(profile_, env_, spec_.batch_size, active,
                                   config_, pod->speed_factor, local_group);
    const double t_mine = std::max(1e-9, mine.Total());
    ResourceSpec usage;
    usage.cpu =
        std::min(config_.worker_cpu, profile_.max_worker_parallelism) *
        std::clamp(mine.t_grad / t_mine, 0.0, 1.0);
    usage.memory = profile_.worker_static_bytes * 0.85;
    cluster_->ReportUsage(w->pod, usage);
  }

  // OOM semantics: a PS whose usage exceeds its limit is OOM-killed.
  for (PsState* ps : live_ps) {
    Pod* pod = cluster_->GetMutablePod(ps->pod);
    if (pod == nullptr) continue;
    if (pod->usage.memory > config_.ps_memory) {
      cluster_->FailPod(ps->pod, PodStopReason::kOomKill);
      break;  // one OOM per tick; recovery handles the rest
    }
  }
}

void TrainingJob::ProfileTick() {
  if (finished()) return;
  if (state_ == JobState::kInitializing &&
      sim_->Now() - stats_.submit_time > spec_.pending_timeout) {
    FailJob("scheduling: pods pending beyond timeout");
    return;
  }
  UpdateMemoryAndUsage();
  if (finished()) return;  // OOM handling above may have killed the job

  const SimTime now = sim_->Now();
  const uint64_t batches = batches_done();
  ThroughputSample sample;
  sample.time = now;
  sample.config = config_;
  sample.active_workers = ActiveWorkerCount();
  sample.batches_done = batches;
  sample.max_ps_memory = MaxPsMemory();
  const double dt = now - window_start_;
  if (dt > 0.0 && batches >= window_batches_) {
    sample.samples_per_sec =
        static_cast<double>(batches - window_batches_) *
        static_cast<double>(spec_.batch_size) / dt;
  }
  if (sample.samples_per_sec > 0.0 && sample.active_workers > 0) {
    sample.observed_iter_time = static_cast<double>(sample.active_workers) *
                                static_cast<double>(spec_.batch_size) /
                                sample.samples_per_sec;
  }
  // Utilisation of our own pods (used / allocated).
  double w_used = 0.0, w_alloc = 0.0, p_used = 0.0, p_alloc = 0.0;
  double w_mem_used = 0.0, w_mem_alloc = 0.0;
  double p_mem_used = 0.0, p_mem_alloc = 0.0;
  for (const auto& w : workers_) {
    if (w->retired || !w->pod_running) continue;
    const Pod* pod = cluster_->GetPod(w->pod);
    if (pod == nullptr) continue;
    w_used += pod->usage.cpu;
    w_alloc += pod->spec.request.cpu;
    w_mem_used += pod->usage.memory;
    w_mem_alloc += pod->spec.request.memory;
  }
  for (const auto& p : ps_) {
    if (p->retired || !p->pod_running) continue;
    const Pod* pod = cluster_->GetPod(p->pod);
    if (pod == nullptr) continue;
    p_used += pod->usage.cpu;
    p_alloc += pod->spec.request.cpu;
    p_mem_used += pod->usage.memory;
    p_mem_alloc += pod->spec.request.memory;
  }
  sample.worker_cpu_util = w_alloc > 0.0 ? w_used / w_alloc : 0.0;
  sample.ps_cpu_util = p_alloc > 0.0 ? p_used / p_alloc : 0.0;
  sample.worker_mem_util = w_mem_alloc > 0.0 ? w_mem_used / w_mem_alloc : 0.0;
  sample.ps_mem_util = p_mem_alloc > 0.0 ? p_mem_used / p_mem_alloc : 0.0;
  history_.push_back(sample);
  last_throughput_ = sample.samples_per_sec;
  window_start_ = now;
  window_batches_ = batches;

  oom_predictor_.Observe(now, MaxPsMemory());

  if (cluster_->node_health_enabled()) MaybeReportPsSlowdown();
}

void TrainingJob::MaybeReportPsSlowdown() {
  // The blind spot this closes (DESIGN §14): a degraded node whose only
  // residents are parameter servers slows *every* worker of the jobs it
  // serves uniformly, so the intra-job median straggler comparison never
  // fires. The uniform collapse itself — against the job's own best
  // steady-state rate — is the signal, and the PS nodes are the suspects.
  if (state_ != JobState::kRunning || paused_ ||
      transition_ != TransitionKind::kNone) {
    return;
  }
  const double smoothed = SmoothedThroughput();
  if (smoothed <= 0.0) return;
  if (smoothed > best_smoothed_) best_smoothed_ = smoothed;
  // Settling window after any rescale/recovery: the baseline is re-learned
  // and no verdicts are issued, so legitimate plan-driven throughput moves
  // can never be mistaken for node degradation.
  if (sim_->Now() - last_disruption_ < 5.0 * spec_.profile_interval ||
      best_smoothed_ <= 0.0) {
    return;
  }
  // Any flagged straggler means the slowdown is *not* uniform — that is the
  // ordinary straggler evidence path's job, not this one.
  for (const auto& [member, health] : monitor_.members()) {
    if (health.flagged_straggler) {
      ps_slowdown_streak_ = 0;
      return;
    }
  }
  if (smoothed >= 0.6 * best_smoothed_) {
    ps_slowdown_streak_ = 0;
    return;
  }
  if (++ps_slowdown_streak_ < 3) return;
  ControlChannel* ch = cluster_->control_channel();
  for (const auto& p : ps_) {
    if (p->retired || !p->pod_running || p->pod == 0) continue;
    const PodId pod = p->pod;
    if (ch != nullptr) {
      ch->Send(ControlMessageKind::kStragglerVerdict, ControlChannel::kMaster,
               ControlChannel::kBrain, [this, pod] {
                 cluster_->ReportPsSlowdownEvidence(pod, spec_.seed);
               });
    } else {
      cluster_->ReportPsSlowdownEvidence(pod, spec_.seed);
    }
    ++stats_.ps_slowdown_reports;
  }
}

}  // namespace dlrover
