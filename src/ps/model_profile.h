#ifndef DLROVER_PS_MODEL_PROFILE_H_
#define DLROVER_PS_MODEL_PROFILE_H_

#include <string>

#include "common/units.h"

namespace dlrover {

/// The three representative DLRM models the paper evaluates (Section 6):
/// Model-X = Wide&Deep, Model-Y = xDeepFM, Model-Z = DCN.
enum class ModelKind : int { kWideDeep = 0, kXDeepFm = 1, kDcn = 2 };

std::string ModelKindName(ModelKind kind);

/// Ground-truth workload profile of one DLRM model. The alpha/beta pairs are
/// the *true* constants of the iteration-time laws (paper Eqns 2-5); the
/// simulator evaluates these laws (plus noise and interference) as the
/// physical truth that DLRover-RM's fitter later has to rediscover from
/// runtime observations.
struct ModelProfile {
  ModelKind kind = ModelKind::kWideDeep;
  std::string name;

  // T_grad = alpha_grad * m / lambda_w + beta_grad            (Eqn 2)
  double alpha_grad = 0.0;
  double beta_grad = 0.0;
  // T_upd = alpha_upd * w / (p * lambda_p) + beta_upd          (Eqn 3)
  double alpha_upd = 0.0;
  double beta_upd = 0.0;
  // T_sync = alpha_sync * (M/p) / (B/w) + beta_sync            (Eqn 4)
  double alpha_sync = 0.0;
  double beta_sync = 0.0;
  // T_emb = alpha_emb * m * D / p + beta_emb                   (Eqn 5)
  double alpha_emb = 0.0;
  double beta_emb = 0.0;

  /// Dense model size M in bytes (synchronized each iteration).
  Bytes dense_param_bytes = 0.0;
  /// Embedding dimension D.
  int embedding_dim = 16;

  /// Embedding-table growth: the number of distinct categories seen after n
  /// samples follows phi(n) = phi_max * (1 - exp(-n / phi_n0)); memory is
  /// bytes_per_category * phi(n) (vector + optimizer slots).
  double phi_max = 0.0;
  double phi_n0 = 1.0;
  Bytes bytes_per_category = 0.0;

  /// Parallelism saturation: cores beyond these caps neither speed up the
  /// computation nor get used (TF op-level parallelism limits). This is why
  /// over-provisioned pods show low utilisation instead of running faster.
  double max_worker_parallelism = 12.0;
  double max_ps_parallelism = 10.0;

  /// Static per-PS memory (dense params, gradients, optimizer state).
  Bytes ps_static_bytes = 0.0;
  /// Worker working-set memory (graph, input pipeline, activations).
  Bytes worker_static_bytes = 0.0;

  /// Embedding memory in bytes after `samples` training samples.
  Bytes EmbeddingBytesAt(double samples) const;
};

/// Cluster-wide constants shared by all jobs.
struct EnvironmentProfile {
  /// Per-worker network bandwidth B (paper treats B as constant).
  Bandwidth network_bandwidth = GiBps(1.25);  // 10 Gbps NICs
  /// Log-space sigma of per-shard multiplicative timing noise.
  double timing_noise_sigma = 0.04;
};

/// Returns the calibrated ground-truth profile for a model. Constants are
/// calibrated so that (a) well-tuned JCTs land in the paper's ~25-45 minute
/// range for batch 512 / 200k steps on the small cluster, and (b) embedding
/// lookup consumes 30-48% of iteration time across realistic configs
/// (paper Fig 1a).
ModelProfile GetModelProfile(ModelKind kind);

}  // namespace dlrover

#endif  // DLROVER_PS_MODEL_PROFILE_H_
