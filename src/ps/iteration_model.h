#ifndef DLROVER_PS_ITERATION_MODEL_H_
#define DLROVER_PS_ITERATION_MODEL_H_

#include <vector>

#include "ps/job_config.h"
#include "ps/model_profile.h"

namespace dlrover {

/// Per-iteration time decomposition (paper Section 4.1). All values in
/// simulated seconds.
struct IterationBreakdown {
  double t_grad = 0.0;  // worker gradient computation (Eqn 2)
  double t_upd = 0.0;   // PS parameter update (Eqn 3)
  double t_sync = 0.0;  // parameter pull/push (Eqn 4)
  double t_emb = 0.0;   // embedding lookups (Eqn 5)

  double Total() const { return t_grad + t_upd + t_sync + t_emb; }
  /// Fraction of the iteration spent in embedding lookups (Fig 1a metric).
  double LookupFraction() const {
    const double total = Total();
    return total > 0.0 ? t_emb / total : 0.0;
  }
};

/// Degradation state of the PS group. `shares[i]` is the fraction of
/// parameters (and thus of update/lookup work) held by PS i (sums to 1);
/// `speeds[i]` is its hardware speed factor. The slowest "hottest" PS gates
/// all PS-side terms: effective 1/p becomes max_i(shares[i] / speeds[i]).
struct PsGroupState {
  std::vector<double> shares;
  std::vector<double> speeds;

  /// Builds a balanced, healthy group of `p` servers.
  static PsGroupState Balanced(int p);

  /// max_i(shares[i] / speeds[i]); equals 1/p for a balanced healthy group.
  double EffectiveInverseP() const;
};

/// Evaluates the ground-truth iteration laws for one worker of a job.
///
///   profile       the model's true constants
///   env           bandwidth etc.
///   batch_size    m
///   active_workers  w (workers concurrently training)
///   config        per-pod CPU allocations (lambda_w, lambda_p)
///   worker_speed  this worker's hardware speed factor
///   ps_state      PS shares/speeds (hot-PS and straggler-PS effects)
IterationBreakdown ComputeIteration(const ModelProfile& profile,
                                    const EnvironmentProfile& env,
                                    uint64_t batch_size, int active_workers,
                                    const JobConfig& config,
                                    double worker_speed,
                                    const PsGroupState& ps_state);

/// Convenience: the breakdown for a healthy, balanced job (all speeds 1.0).
IterationBreakdown ComputeHealthyIteration(const ModelProfile& profile,
                                           const EnvironmentProfile& env,
                                           uint64_t batch_size,
                                           const JobConfig& config);

/// Job throughput in samples/second implied by an iteration breakdown
/// (Eqn 1: Psi = w * m / T_iter).
double ThroughputSamplesPerSec(const IterationBreakdown& iter,
                               uint64_t batch_size, int active_workers);

}  // namespace dlrover

#endif  // DLROVER_PS_ITERATION_MODEL_H_
