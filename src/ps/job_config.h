#ifndef DLROVER_PS_JOB_CONFIG_H_
#define DLROVER_PS_JOB_CONFIG_H_

#include <string>

#include "cluster/resources.h"
#include "common/units.h"

namespace dlrover {

/// A complete resource allocation A for one PS-architecture training job:
/// horizontal (worker / PS counts) plus vertical (per-pod CPU and memory).
/// This is the decision vector the optimizer searches over.
struct JobConfig {
  int num_workers = 4;
  int num_ps = 1;
  Cores worker_cpu = 4.0;
  Cores ps_cpu = 4.0;
  Bytes worker_memory = GiB(4);
  Bytes ps_memory = GiB(16);

  /// Total CPU cores requested by this allocation.
  Cores TotalCpu() const {
    return num_workers * worker_cpu + num_ps * ps_cpu;
  }
  /// Total memory requested by this allocation.
  Bytes TotalMemory() const {
    return num_workers * worker_memory + num_ps * ps_memory;
  }
  ResourceSpec TotalResources() const { return {TotalCpu(), TotalMemory()}; }

  ResourceSpec WorkerRequest() const { return {worker_cpu, worker_memory}; }
  ResourceSpec PsRequest() const { return {ps_cpu, ps_memory}; }

  bool operator==(const JobConfig& o) const {
    return num_workers == o.num_workers && num_ps == o.num_ps &&
           worker_cpu == o.worker_cpu && ps_cpu == o.ps_cpu &&
           worker_memory == o.worker_memory && ps_memory == o.ps_memory;
  }

  std::string ToString() const;
};

}  // namespace dlrover

#endif  // DLROVER_PS_JOB_CONFIG_H_
