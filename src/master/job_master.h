#ifndef DLROVER_MASTER_JOB_MASTER_H_
#define DLROVER_MASTER_JOB_MASTER_H_

#include <memory>
#include <vector>

#include "brain/scaling_policy.h"
#include "cluster/control_channel.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

namespace dlrover {

struct JobMasterOptions {
  /// Local instability-handling tick (straggler mitigation, OOM guard).
  Duration tick_interval = Seconds(30);
  bool straggler_mitigation = true;
  bool oom_prevention = true;
  /// Reap workers whose pods run but stopped heartbeating (see
  /// TrainingJob::ReapSilentWorkers). Off by default: killing pods on
  /// heartbeat evidence alone is a policy the experiment must opt into.
  bool failure_detection = false;
  /// Evacuate pods off draining (cordoned) nodes make-before-break (see
  /// TrainingJob::EvacuateDrainingPods). On by default: with no node ever
  /// cordoned — the case unless ClusterOptions::enable_node_health or a test
  /// drains one — the pass inspects pod placements and does nothing, so the
  /// event trace is unchanged.
  bool drain_migration = true;
};

/// The job-level agent (paper Fig 4): owns the profiler/executor loop for
/// one training job. Cluster-level decisions come from the brain; the
/// master handles everything that must react fast and locally — straggler
/// shard-resizing and the OOM pre-scaling guard.
///
/// With a ControlChannel attached, the master is a crashable process: an
/// injected crash stops its periodic loop and loses its volatile state
/// (plan-sequence watermark past the last tick snapshot); workers keep
/// processing their current shards under the last-known plan, and local
/// policies simply stop until failover. The deterministic restart bumps the
/// master's channel epoch (in-flight plan deliveries addressed to the dead
/// incarnation are fenced), restores the snapshot, and resumes the loop.
/// The job-level sequence fence is the backstop for anything the snapshot
/// missed.
class JobMaster : public ControlMasterEndpoint {
 public:
  JobMaster(Simulator* sim, TrainingJob* job,
            const JobMasterOptions& options = {});
  ~JobMaster() override;

  void Start();
  void Stop();

  /// Registers this master with the control channel: crash/restart
  /// injection reaches it, the brain pins plan deliveries to its handle,
  /// and the job routes every plan through the master-side fence.
  void AttachChannel(ControlChannel* channel);

  // ControlMasterEndpoint (invoked by the channel's failover machinery).
  void OnMasterCrash() override;
  void OnMasterRestart() override;

  TrainingJob* job() { return job_; }
  bool up() const { return up_; }
  int channel_handle() const { return channel_handle_; }
  uint64_t crashes() const { return crashes_; }
  uint64_t restarts() const { return restarts_; }
  /// Plans fenced by the master-side sequence check (before the job's own).
  uint64_t plans_gated_stale() const { return plans_gated_stale_; }
  uint64_t snapshot_last_plan_seq() const { return snapshot_last_plan_seq_; }

 private:
  void Tick();
  /// Master-side plan gate: every brain plan delivery passes through here
  /// when a channel is attached (TrainingJob::set_master_plan_gate).
  Status GatePlan(const JobConfig& config, MigrationMode mode, uint64_t seq);

  Simulator* sim_;
  TrainingJob* job_;
  JobMasterOptions options_;
  std::unique_ptr<PeriodicTask> task_;
  ControlChannel* channel_ = nullptr;
  int channel_handle_ = -1;
  /// Owner intent (Start/Stop) vs process liveness (crash/failover): a
  /// restart resumes the loop only if the owner still wants it running.
  bool started_ = false;
  bool up_ = true;
  /// The master's in-memory plan-sequence watermark, and the durable
  /// snapshot persisted at each tick. A crash rolls the watermark back to
  /// the snapshot — deliberately lossy, so the restarted master can accept
  /// a sequence number the dead incarnation already applied; the job-level
  /// fence (which never crashes with the master) is what keeps that replay
  /// from double-applying.
  uint64_t volatile_last_plan_seq_ = 0;
  uint64_t snapshot_last_plan_seq_ = 0;
  uint64_t crashes_ = 0;
  uint64_t restarts_ = 0;
  uint64_t plans_gated_stale_ = 0;
};

/// Drives a plug-in ScalingPolicy (ES, Optimus, ...) on a fixed round
/// interval across a set of jobs — the baseline counterpart of the
/// ClusterBrain's scheduling loop. With a control channel attached, plans
/// are sequence-stamped and delivered as reliable channel messages pinned to
/// each job's master handle; without one, behaviour is byte-identical to
/// the direct-call path.
class PolicyDriver {
 public:
  PolicyDriver(Simulator* sim, ScalingPolicy* policy,
               Duration round_interval = Minutes(3));

  void AddJob(TrainingJob* job);
  void Start();
  void Stop();

  void set_control_channel(ControlChannel* channel) { channel_ = channel; }

  int plans_applied() const { return plans_applied_; }
  /// Plans handed to the channel for delivery (channel mode only; whether
  /// each applied is the receiving job's story).
  int plans_sent() const { return plans_sent_; }

  /// Driver state that must survive a crash/restart: the per-job plan
  /// sequence counters. Restoring an older snapshot deliberately replays
  /// sequence numbers — the fences downstream are what keep that safe.
  struct Snapshot {
    std::vector<uint64_t> plan_seqs;
  };
  Snapshot SnapshotState() const;
  void RestoreState(const Snapshot& snapshot);

 private:
  void Round();

  Simulator* sim_;
  ScalingPolicy* policy_;
  std::vector<TrainingJob*> jobs_;
  /// Per-job monotone plan sequence (parallel to jobs_).
  std::vector<uint64_t> plan_seqs_;
  std::unique_ptr<PeriodicTask> task_;
  ControlChannel* channel_ = nullptr;
  int plans_applied_ = 0;
  int plans_sent_ = 0;
};

}  // namespace dlrover

#endif  // DLROVER_MASTER_JOB_MASTER_H_
