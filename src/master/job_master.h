#ifndef DLROVER_MASTER_JOB_MASTER_H_
#define DLROVER_MASTER_JOB_MASTER_H_

#include <memory>
#include <vector>

#include "brain/scaling_policy.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

namespace dlrover {

struct JobMasterOptions {
  /// Local instability-handling tick (straggler mitigation, OOM guard).
  Duration tick_interval = Seconds(30);
  bool straggler_mitigation = true;
  bool oom_prevention = true;
  /// Reap workers whose pods run but stopped heartbeating (see
  /// TrainingJob::ReapSilentWorkers). Off by default: killing pods on
  /// heartbeat evidence alone is a policy the experiment must opt into.
  bool failure_detection = false;
  /// Evacuate pods off draining (cordoned) nodes make-before-break (see
  /// TrainingJob::EvacuateDrainingPods). On by default: with no node ever
  /// cordoned — the case unless ClusterOptions::enable_node_health or a test
  /// drains one — the pass inspects pod placements and does nothing, so the
  /// event trace is unchanged.
  bool drain_migration = true;
};

/// The job-level agent (paper Fig 4): owns the profiler/executor loop for
/// one training job. Cluster-level decisions come from the brain; the
/// master handles everything that must react fast and locally — straggler
/// shard-resizing and the OOM pre-scaling guard.
class JobMaster {
 public:
  JobMaster(Simulator* sim, TrainingJob* job,
            const JobMasterOptions& options = {});

  void Start();
  void Stop();

  TrainingJob* job() { return job_; }

 private:
  void Tick();

  Simulator* sim_;
  TrainingJob* job_;
  JobMasterOptions options_;
  std::unique_ptr<PeriodicTask> task_;
};

/// Drives a plug-in ScalingPolicy (ES, Optimus, ...) on a fixed round
/// interval across a set of jobs — the baseline counterpart of the
/// ClusterBrain's scheduling loop.
class PolicyDriver {
 public:
  PolicyDriver(Simulator* sim, ScalingPolicy* policy,
               Duration round_interval = Minutes(3));

  void AddJob(TrainingJob* job) { jobs_.push_back(job); }
  void Start();
  void Stop();

  int plans_applied() const { return plans_applied_; }

 private:
  void Round();

  Simulator* sim_;
  ScalingPolicy* policy_;
  std::vector<TrainingJob*> jobs_;
  std::unique_ptr<PeriodicTask> task_;
  int plans_applied_ = 0;
};

}  // namespace dlrover

#endif  // DLROVER_MASTER_JOB_MASTER_H_
