#include "master/job_master.h"

namespace dlrover {

JobMaster::JobMaster(Simulator* sim, TrainingJob* job,
                     const JobMasterOptions& options)
    : sim_(sim), job_(job), options_(options) {
  task_ = std::make_unique<PeriodicTask>(sim_, options_.tick_interval,
                                         [this] { Tick(); });
}

void JobMaster::Start() { task_->Start(); }
void JobMaster::Stop() { task_->Stop(); }

void JobMaster::Tick() {
  if (job_->finished()) {
    task_->Stop();
    return;
  }
  if (options_.failure_detection) job_->ReapSilentWorkers();
  if (options_.drain_migration) job_->EvacuateDrainingPods();
  if (options_.straggler_mitigation) job_->MitigateStragglers();
  if (options_.oom_prevention) job_->MaybePreventOom();
}

PolicyDriver::PolicyDriver(Simulator* sim, ScalingPolicy* policy,
                           Duration round_interval)
    : sim_(sim), policy_(policy) {
  task_ = std::make_unique<PeriodicTask>(sim_, round_interval,
                                         [this] { Round(); });
}

void PolicyDriver::Start() { task_->Start(); }
void PolicyDriver::Stop() { task_->Stop(); }

void PolicyDriver::Round() {
  for (TrainingJob* job : jobs_) {
    if (job->finished()) continue;
    auto plan = policy_->Propose(*job);
    if (!plan.has_value()) continue;
    if (job->ApplyPlan(plan->config, plan->mode).ok()) {
      ++plans_applied_;
    }
  }
}

}  // namespace dlrover
