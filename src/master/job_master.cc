#include "master/job_master.h"

#include <algorithm>

namespace dlrover {

JobMaster::JobMaster(Simulator* sim, TrainingJob* job,
                     const JobMasterOptions& options)
    : sim_(sim), job_(job), options_(options) {
  task_ = std::make_unique<PeriodicTask>(sim_, options_.tick_interval,
                                         [this] { Tick(); });
}

JobMaster::~JobMaster() {
  if (channel_ != nullptr) {
    job_->set_master_plan_gate(nullptr);
    job_->set_master_channel_handle(-1);
    channel_->UnregisterMaster(channel_handle_);
  }
}

void JobMaster::Start() {
  started_ = true;
  if (up_) task_->Start();
}

void JobMaster::Stop() {
  started_ = false;
  task_->Stop();
}

void JobMaster::AttachChannel(ControlChannel* channel) {
  channel_ = channel;
  channel_handle_ = channel_->RegisterMaster(this);
  job_->set_master_channel_handle(channel_handle_);
  job_->set_master_plan_gate(
      [this](const JobConfig& config, MigrationMode mode, uint64_t seq) {
        return GatePlan(config, mode, seq);
      });
}

void JobMaster::OnMasterCrash() {
  up_ = false;
  ++crashes_;
  // The process died: periodic local policies (straggler mitigation, OOM
  // guard, reaping, drain migration) stop until failover. Workers keep
  // processing their current shards under the last-known plan — nothing
  // about the data plane depends on the master being alive.
  task_->Stop();
}

void JobMaster::OnMasterRestart() {
  up_ = true;
  ++restarts_;
  // Deterministic restart from the tick snapshot: anything the dead
  // incarnation applied after its last snapshot is forgotten here, and the
  // job-level sequence fence absorbs the resulting replays.
  volatile_last_plan_seq_ = snapshot_last_plan_seq_;
  if (started_ && !job_->finished()) task_->Start();
}

Status JobMaster::GatePlan(const JobConfig& config, MigrationMode mode,
                           uint64_t seq) {
  if (!up_) {
    // Channel epoch fencing normally prevents deliveries to a down master;
    // this is the defensive backstop for direct callers.
    return UnavailableError("job master is down");
  }
  if (channel_ != nullptr && channel_->fencing_enabled() &&
      seq <= volatile_last_plan_seq_ && volatile_last_plan_seq_ != 0) {
    ++plans_gated_stale_;
    channel_->NotePlanFenced(job_->spec().seed, seq);
    return FailedPreconditionError("stale plan fenced at master");
  }
  const Status status = job_->ApplyPlanFenced(config, mode, seq);
  if (status.ok()) {
    volatile_last_plan_seq_ = std::max(volatile_last_plan_seq_, seq);
  }
  return status;
}

void JobMaster::Tick() {
  if (job_->finished()) {
    task_->Stop();
    return;
  }
  // Persist the master snapshot (what a real master would write to etcd):
  // everything a replacement needs to take over is the plan watermark; the
  // rest of the master's working state is rebuilt from the job itself.
  snapshot_last_plan_seq_ = volatile_last_plan_seq_;
  if (options_.failure_detection) job_->ReapSilentWorkers();
  if (options_.drain_migration) job_->EvacuateDrainingPods();
  if (options_.straggler_mitigation) job_->MitigateStragglers();
  if (options_.oom_prevention) job_->MaybePreventOom();
}

PolicyDriver::PolicyDriver(Simulator* sim, ScalingPolicy* policy,
                           Duration round_interval)
    : sim_(sim), policy_(policy) {
  task_ = std::make_unique<PeriodicTask>(sim_, round_interval,
                                         [this] { Round(); });
}

void PolicyDriver::AddJob(TrainingJob* job) {
  jobs_.push_back(job);
  plan_seqs_.push_back(0);
}

void PolicyDriver::Start() { task_->Start(); }
void PolicyDriver::Stop() { task_->Stop(); }

PolicyDriver::Snapshot PolicyDriver::SnapshotState() const {
  Snapshot snapshot;
  snapshot.plan_seqs = plan_seqs_;
  return snapshot;
}

void PolicyDriver::RestoreState(const Snapshot& snapshot) {
  for (size_t i = 0; i < plan_seqs_.size(); ++i) {
    plan_seqs_[i] = i < snapshot.plan_seqs.size() ? snapshot.plan_seqs[i] : 0;
  }
}

void PolicyDriver::Round() {
  for (size_t i = 0; i < jobs_.size(); ++i) {
    TrainingJob* job = jobs_[i];
    if (job->finished()) continue;
    auto plan = policy_->Propose(*job);
    if (!plan.has_value()) continue;
    if (channel_ == nullptr) {
      if (job->ApplyPlan(plan->config, plan->mode).ok()) {
        ++plans_applied_;
      }
      continue;
    }
    const uint64_t seq = ++plan_seqs_[i];
    const JobConfig config = plan->config;
    const MigrationMode mode = plan->mode;
    channel_->SendReliable(
        ControlMessageKind::kPlan, ControlChannel::kBrain,
        ControlChannel::kMaster,
        [job, config, mode, seq] {
          (void)job->DeliverPlanFromBrain(config, mode, seq);
        },
        /*on_expire=*/nullptr, job->master_channel_handle());
    ++plans_sent_;
  }
}

}  // namespace dlrover
