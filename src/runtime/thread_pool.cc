#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace dlrover {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (grain == 0) {
    grain = std::max<size_t>(1, n / (4 * threads_.size() + 1));
  }
  if (n <= grain) {
    body(begin, end);
    return;
  }
  // Chunks are claimed from a shared counter rather than pinned to tasks:
  // the calling thread participates, so the loop completes even when every
  // pool thread is busy with a long-running task, and free pool threads
  // join in as helpers. `body` must not throw (a lost chunk would hang the
  // rendezvous below).
  struct PfState {
    std::atomic<size_t> next_chunk{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t chunks_done = 0;
  };
  const size_t total_chunks = (n + grain - 1) / grain;
  auto state = std::make_shared<PfState>();
  auto drain = [state, begin, end, grain, total_chunks, body]() {
    for (;;) {
      const size_t i = state->next_chunk.fetch_add(1);
      if (i >= total_chunks) return;
      const size_t b = begin + i * grain;
      body(b, std::min(b + grain, end));
      std::lock_guard<std::mutex> lock(state->mu);
      if (++state->chunks_done == total_chunks) state->done_cv.notify_all();
    }
  };
  const size_t helpers = std::min(threads_.size(), total_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) Submit(drain);
  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock,
                      [&]() { return state->chunks_done == total_chunks; });
}

size_t ThreadPool::QueuedTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

ThreadPool& SharedThreadPool() {
  // Magic-static: thread-safe one-time construction; joined at exit.
  static ThreadPool pool(0);
  return pool;
}

}  // namespace dlrover
