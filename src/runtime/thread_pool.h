#ifndef DLROVER_RUNTIME_THREAD_POOL_H_
#define DLROVER_RUNTIME_THREAD_POOL_H_

#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dlrover {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
/// This is the execution substrate for the multi-threaded training runtime:
/// logical PS workers are long-running tasks multiplexed over the pool, and
/// ParallelFor carves data-parallel loops (batch forward/backward, bench
/// sweeps) into chunks. Deliberately no work stealing: tasks here are
/// coarse (a shard or a loop chunk), so a single FIFO queue stays simple
/// and contention-free enough.
class ThreadPool {
 public:
  /// `num_threads` == 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains the queue: already-submitted tasks finish, then threads join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueues `fn` and returns a future for its result. Submitting from
  /// inside a pool task is allowed (used when an elastic event spawns a
  /// replacement worker from a running worker's thread).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      assert(!stop_ && "Submit after shutdown");
      tasks_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs body(chunk_begin, chunk_end) over [begin, end) split into chunks
  /// of at most `grain` indices (0 picks a grain that yields ~4 chunks per
  /// thread). The calling thread executes its share directly, so ParallelFor
  /// completes even when every pool thread is occupied by long-running
  /// tasks. Blocks until all chunks are done.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// Tasks queued but not yet picked up by a worker.
  size_t QueuedTasks() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Process-wide pool sized to the hardware concurrency, constructed on
/// first use. Shared by nested data-parallel work (NSGA-II population
/// evaluation, bench sweeps without an explicit pool) so the process never
/// oversubscribes: ParallelFor callers always participate themselves, so
/// work completes even when every shared thread is busy with an outer task.
ThreadPool& SharedThreadPool();

}  // namespace dlrover

#endif  // DLROVER_RUNTIME_THREAD_POOL_H_
