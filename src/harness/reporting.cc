#include "harness/reporting.h"

#include <cstdarg>
#include <ctime>
#include <thread>

namespace dlrover {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]),
                  c < row.size() ? row[c].c_str() : "");
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

std::string FormatDuration(double seconds) {
  if (seconds < 120.0) return StrFormat("%.1f s", seconds);
  if (seconds < 7200.0) return StrFormat("%.1f min", seconds / 60.0);
  return StrFormat("%.2f h", seconds / 3600.0);
}

std::string FormatPercent(double fraction) {
  return StrFormat("%.1f%%", fraction * 100.0);
}

void PrintBanner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

FILE* OpenBenchJson(const std::string& path, const std::string& bench_name) {
  FILE* json = std::fopen(path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return nullptr;
  }
#ifdef DLROVER_BUILD_TYPE
  const char* build_type = DLROVER_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm utc{}; gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  std::fprintf(json, "{\n  \"bench\": \"%s\",\n", bench_name.c_str());
  std::fprintf(json, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(json, "  \"build_type\": \"%s\",\n", build_type);
  std::fprintf(json, "  \"generated_utc\": \"%s\",\n", stamp);
  return json;
}

}  // namespace dlrover
