#ifndef DLROVER_HARNESS_REPORTING_H_
#define DLROVER_HARNESS_REPORTING_H_

#include <cstdio>
#include <string>
#include <vector>

namespace dlrover {

/// Fixed-width console table, enough for bench output that mirrors the
/// paper's tables and figure series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Prints header, separator, and all rows to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "12.3 min" / "1.24 h" style duration formatting (input seconds).
std::string FormatDuration(double seconds);

/// "37.2%" style.
std::string FormatPercent(double fraction);

/// Prints a banner line for a bench section.
void PrintBanner(const std::string& title);

/// Opens `path` for writing and stamps the shared BENCH_*.json header:
/// opening brace plus "bench", "hardware_threads", "build_type", and
/// "generated_utc" fields (all followed by a trailing comma, so callers
/// continue with their own fields and write the closing brace themselves).
/// Returns nullptr after printing to stderr when the file cannot be opened.
FILE* OpenBenchJson(const std::string& path, const std::string& bench_name);

}  // namespace dlrover

#endif  // DLROVER_HARNESS_REPORTING_H_
