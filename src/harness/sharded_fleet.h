#ifndef DLROVER_HARNESS_SHARDED_FLEET_H_
#define DLROVER_HARNESS_SHARDED_FLEET_H_

#include <cstdint>

#include "harness/experiment.h"
#include "runtime/thread_pool.h"
#include "sim/sharded_simulator.h"

namespace dlrover {

/// Correlated node-failure storms driven by the fleet coordinator: strikes
/// are drawn fleet-wide at window barriers (a deterministic fractional
/// accumulator, no per-shard RNG) and delivered to the victim cell through
/// the engine's commit log. Struck nodes recover after `mttr`.
struct FleetStormOptions {
  /// Expected node strikes per simulated hour across the whole fleet.
  /// 0 disables the storm driver.
  double node_strikes_per_hour = 0.0;
  Duration mttr = Minutes(20);
  uint64_t seed = 1234;
};

/// How to run a FleetScenario on the sharded engine.
struct ShardedFleetOptions {
  /// Number of fleet cells — independent slices of the cluster, each with
  /// its own event queue, cluster slice, brain, background load, and
  /// failure injector, coupled only through window barriers. Part of the
  /// scenario shape: different cell counts simulate different fleets.
  /// cells == 1 reproduces the sequential RunFleet byte for byte.
  int cells = 1;
  /// Execution lanes the cells are advanced on. NEVER affects results —
  /// only wall-clock. 0 picks the hardware concurrency.
  int shards = 1;
  /// Conservative synchronization window (the engine's lookahead).
  Duration window = Minutes(2);
  /// Pool for multi-lane execution; defaults to SharedThreadPool() when
  /// more than one lane is requested.
  ThreadPool* pool = nullptr;
  /// Folds every cell's ClusterCommitLog into a fleet-wide ledger at each
  /// barrier (O(entries), allocation-free when warm).
  bool fleet_ledger = true;
  /// Couples the cells through the ledger: when fleet-wide free CPU drops
  /// below `scarcity_threshold`, every cell's cluster enters scarcity mode
  /// (slow startups) until the fleet recovers. Off for parity benches —
  /// the sequential oracle has no fleet to be scarce against.
  bool scarcity_coupling = false;
  double scarcity_threshold = 0.10;
  FleetStormOptions storm;
};

struct ShardedFleetResult {
  /// Merged per-job outcomes in the original trace order; counters are
  /// summed across cells.
  FleetResult fleet;
  int cells = 1;
  int shards = 1;
  uint64_t windows = 0;
  uint64_t cross_shard_sends = 0;
  /// Accounting deltas folded into the fleet ledger.
  uint64_t ledger_entries = 0;
  /// Peak fleet-wide allocated CPU the ledger observed at any barrier.
  double fleet_peak_allocated_cpu = 0.0;
  uint64_t storm_strikes = 0;
};

/// Runs `scenario` partitioned across `options.cells` fleet cells on the
/// sharded engine. Jobs are dealt round-robin to cells (job i lives in cell
/// i % cells) and nodes are split as evenly as the division allows; cell 0
/// keeps the scenario seed so a 1-cell run is the sequential RunFleet,
/// while further cells fork deterministic per-cell seeds.
///
/// Guarantees: for a fixed `cells`, the result is byte-identical at every
/// `shards` value (1, 2, hw, ...), pool or no pool — parity is pinned in
/// sharded_sim_test.cc; and with cells == 1 (and coupling/storm off) it is
/// byte-identical to RunFleet(scenario).
ShardedFleetResult RunFleetSharded(const FleetScenario& scenario,
                                   const ShardedFleetOptions& options);

}  // namespace dlrover

#endif  // DLROVER_HARNESS_SHARDED_FLEET_H_
