#include "harness/sweep.h"

namespace dlrover {

SweepEngine::SweepEngine(const SweepOptions& options) {
  if (options.pool != nullptr) {
    pool_ = options.pool;
  } else if (options.num_threads == 0) {
    pool_ = &SharedThreadPool();
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(options.num_threads);
    pool_ = owned_pool_.get();
  }
}

std::vector<SingleJobResult> SweepEngine::Run(
    const std::vector<SingleJobScenario>& scenarios) {
  return Map(scenarios,
             [](const SingleJobScenario& s) { return RunSingleJob(s); });
}

std::vector<FleetResult> SweepEngine::Run(
    const std::vector<FleetScenario>& scenarios) {
  return Map(scenarios, [](const FleetScenario& s) { return RunFleet(s); });
}

std::vector<SingleJobResult> RunSingleJobSweep(
    const std::vector<SingleJobScenario>& scenarios,
    const SweepOptions& options) {
  return SweepEngine(options).Run(scenarios);
}

std::vector<FleetResult> RunFleetSweep(
    const std::vector<FleetScenario>& scenarios,
    const SweepOptions& options) {
  return SweepEngine(options).Run(scenarios);
}

}  // namespace dlrover
