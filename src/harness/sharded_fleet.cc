#include "harness/sharded_fleet.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/commit_log.h"
#include "common/rng.h"

namespace dlrover {

ShardedFleetResult RunFleetSharded(const FleetScenario& scenario,
                                   const ShardedFleetOptions& options) {
  const int cells = std::max(1, options.cells);
  int lanes = options.shards;
  if (lanes <= 0) {
    lanes = static_cast<int>(
        std::max<unsigned>(1, std::thread::hardware_concurrency()));
  }
  const bool ledger_on = options.fleet_ledger || options.scarcity_coupling ||
                         options.storm.node_strikes_per_hour > 0.0;

  // The full trace is generated once, exactly as RunFleet would, then dealt
  // round-robin: job i lives in cell i % cells, preserving arrival order
  // within each cell.
  WorkloadOptions workload_options = scenario.workload;
  workload_options.seed = scenario.seed * 1009 + 4;
  const std::vector<GeneratedJob> trace =
      WorkloadGenerator(workload_options).Generate();
  std::vector<std::vector<GeneratedJob>> slices(
      static_cast<size_t>(cells));
  for (size_t i = 0; i < trace.size(); ++i) {
    slices[i % static_cast<size_t>(cells)].push_back(trace[i]);
  }

  // Nodes split as evenly as the division allows (first cells get the
  // remainder). Cell 0 keeps the scenario seed — with cells == 1 every
  // derived RNG stream matches the sequential RunFleet exactly.
  const int nodes_base = scenario.cluster.num_nodes / cells;
  const int nodes_rem = scenario.cluster.num_nodes % cells;

  // Destruction order matters: the fleets' teardown (brain Stop) cancels
  // events on the engine's shard simulators, so `fleets` must unwind
  // before `engine`; the clusters hold pointers into `logs`, so `logs`
  // outlives `fleets`. Declaration order below encodes exactly that.
  std::vector<ClusterCommitLog> logs(static_cast<size_t>(cells));
  ShardedSimOptions engine_options;
  engine_options.num_shards = cells;
  engine_options.window = options.window;
  engine_options.parallelism = static_cast<size_t>(lanes);
  engine_options.pool =
      lanes > 1 ? (options.pool != nullptr ? options.pool
                                           : &SharedThreadPool())
                : options.pool;
  ShardedSimulator engine(engine_options);
  std::vector<std::unique_ptr<FleetSimulation>> fleets;
  fleets.reserve(static_cast<size_t>(cells));
  std::vector<int> cell_nodes(static_cast<size_t>(cells));
  for (int c = 0; c < cells; ++c) {
    FleetScenario cell_scenario = scenario;
    cell_scenario.seed = scenario.seed + 7919ull * static_cast<uint64_t>(c);
    cell_scenario.cluster.num_nodes = nodes_base + (c < nodes_rem ? 1 : 0);
    cell_nodes[static_cast<size_t>(c)] = cell_scenario.cluster.num_nodes;
    fleets.push_back(std::make_unique<FleetSimulation>(
        &engine.shard(c), cell_scenario,
        std::move(slices[static_cast<size_t>(c)])));
    if (ledger_on) {
      fleets.back()->cluster().set_commit_log(
          &logs[static_cast<size_t>(c)]);
    }
  }

  FleetLedger ledger;
  std::vector<ClusterCommitLog*> log_ptrs;
  for (auto& log : logs) log_ptrs.push_back(&log);

  Rng storm_rng(options.storm.seed * 6151 + 3);
  double storm_accumulator = 0.0;
  SimTime last_barrier = 0.0;
  uint64_t storm_strikes = 0;
  bool fleet_scarce = false;

  engine.set_barrier_hook([&](SimTime barrier) {
    if (ledger_on) ledger.Fold(log_ptrs);
    if (options.scarcity_coupling) {
      // Edge-triggered: a send per cell only when the fleet-wide signal
      // flips, delivered through the commit log like any other
      // cross-shard effect.
      const bool scarce =
          ledger.FreeCpuFraction() < options.scarcity_threshold;
      if (scarce != fleet_scarce) {
        fleet_scarce = scarce;
        for (int c = 0; c < cells; ++c) {
          Cluster* cluster = &fleets[static_cast<size_t>(c)]->cluster();
          engine.Send(ShardedSimulator::kCoordinator, c, barrier,
                      [cluster, scarce] {
                        cluster->set_fleet_scarcity(scarce);
                      });
        }
      }
    }
    if (options.storm.node_strikes_per_hour > 0.0) {
      // Deterministic fractional accumulator: expected strikes accrue with
      // simulated time; whole strikes are drawn and dealt at barriers, so
      // the storm schedule is a pure function of (seed, window sequence).
      storm_accumulator += options.storm.node_strikes_per_hour *
                           (barrier - last_barrier) / 3600.0;
      while (storm_accumulator >= 1.0) {
        storm_accumulator -= 1.0;
        const int cell = static_cast<int>(
            storm_rng.UniformInt(int64_t{0}, int64_t{cells - 1}));
        const int nodes = cell_nodes[static_cast<size_t>(cell)];
        if (nodes <= 0) continue;
        const NodeId node = static_cast<NodeId>(
            storm_rng.UniformInt(int64_t{0}, int64_t{nodes - 1}));
        const SimTime due =
            barrier + storm_rng.Uniform(0.0, std::max(options.window, 1.0));
        Cluster* cluster = &fleets[static_cast<size_t>(cell)]->cluster();
        const Duration mttr = options.storm.mttr;
        engine.Send(ShardedSimulator::kCoordinator, cell, due,
                    [cluster, node, mttr] {
                      cluster->FailNode(node);
                      cluster->sim()->ScheduleAfter(
                          mttr, [cluster, node] {
                            cluster->RecoverNode(node);
                          });
                    });
        ++storm_strikes;
      }
    }
    last_barrier = barrier;
  });

  engine.RunUntil(scenario.horizon);

  // Merge per-cell results back into the original trace order: the k-th
  // job of cell c was trace job c + k*cells.
  std::vector<FleetResult> cell_results;
  cell_results.reserve(static_cast<size_t>(cells));
  for (auto& fleet : fleets) cell_results.push_back(fleet->Collect());

  ShardedFleetResult result;
  result.cells = cells;
  result.shards = lanes;
  result.windows = engine.windows_run();
  result.cross_shard_sends = engine.cross_shard_sends();
  result.ledger_entries = ledger.entries_folded();
  result.fleet_peak_allocated_cpu = ledger.peak_allocated_cpu();
  result.storm_strikes = storm_strikes;
  for (const FleetResult& cell : cell_results) {
    result.fleet.executed_events += cell.executed_events;
    result.fleet.pods_preempted += cell.pods_preempted;
    result.fleet.crashes_injected += cell.crashes_injected;
    result.fleet.stragglers_injected += cell.stragglers_injected;
    result.fleet.node_faults_injected += cell.node_faults_injected;
    // Per-cell audit logs concatenate in cell order: each cell's log is a
    // pure function of its own seeded streams, so the merged log is
    // byte-identical at any lane count.
    result.fleet.fault_log.insert(result.fleet.fault_log.end(),
                                  cell.fault_log.begin(),
                                  cell.fault_log.end());
    result.fleet.health_log.insert(result.fleet.health_log.end(),
                                   cell.health_log.begin(),
                                   cell.health_log.end());
    result.fleet.nodes_cordoned += cell.nodes_cordoned;
    result.fleet.nodes_uncordoned += cell.nodes_uncordoned;
    // Control-plane telemetry merges the same way: summed counters plus
    // per-cell event logs appended in cell order.
    result.fleet.control_stats += cell.control_stats;
    result.fleet.control_log.insert(result.fleet.control_log.end(),
                                    cell.control_log.begin(),
                                    cell.control_log.end());
    result.fleet.control_faults_injected += cell.control_faults_injected;
    result.fleet.plans_fenced += cell.plans_fenced;
    result.fleet.stale_plan_applies += cell.stale_plan_applies;
    result.fleet.shard_reports_rejected += cell.shard_reports_rejected;
    result.fleet.shard_reports_expired += cell.shard_reports_expired;
  }
  result.fleet.jobs.reserve(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    FleetResult& cell = cell_results[i % static_cast<size_t>(cells)];
    result.fleet.jobs.push_back(
        std::move(cell.jobs[i / static_cast<size_t>(cells)]));
  }
  return result;
}

}  // namespace dlrover
