#ifndef DLROVER_HARNESS_EXPERIMENT_H_
#define DLROVER_HARNESS_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/manual.h"
#include "brain/brain.h"
#include "cluster/background_load.h"
#include "cluster/cluster.h"
#include "cluster/control_channel.h"
#include "cluster/failure_injector.h"
#include "common/stats.h"
#include "ps/training_job.h"
#include "trace/workload_gen.h"

namespace dlrover {

/// Which control plane manages the job(s) in a scenario.
enum class SchedulerKind : int {
  kManualTuned = 0,    // static hand-tuned config (Kubeflow well-tuned)
  kManualUser = 1,     // static user misconfiguration (Kubeflow typical)
  kDlrover = 2,        // full DLRover-RM (brain + master + mechanisms)
  kEs = 3,             // Elastic Scheduler baseline
  kOptimus = 4,        // Optimus baseline
  kNoIntervention = 5, // tuned config, faults left unhandled
  kTraditional = 6,    // tuned config, stop-and-restart fault handling
};

std::string SchedulerKindName(SchedulerKind kind);

/// Scripted fault injection for single-job scenarios (Figs 12/13).
struct ScenarioInjection {
  enum class Kind : int { kNone = 0, kHotPs = 1, kWorkerStraggler = 2 };
  Kind kind = Kind::kNone;
  Duration at = Minutes(10);
  double speed = 0.03;  // paper: degraded to 3% of tuned CPU
};

struct SingleJobScenario {
  SchedulerKind scheduler = SchedulerKind::kDlrover;
  ModelKind model = ModelKind::kWideDeep;
  uint64_t total_steps = 200000;
  uint64_t batch_size = 512;
  /// Initial allocation; defaults per scheduler (well-tuned for manual
  /// kinds, a deliberately small cold-start config for auto-scalers).
  std::optional<JobConfig> initial;
  ScenarioInjection injection;
  /// When true (the default), auto-scalers start from a configuration
  /// warm-started out of seeded production history (the paper's stage 1);
  /// when false they cold-start from ColdStartConfig (the Fig 10 ablation).
  bool warm_start = true;
  Duration horizon = Hours(24);
  Duration round_interval = Minutes(3);
  ClusterOptions cluster;
  uint64_t seed = 1;
};

struct SingleJobResult {
  JobStats stats;
  JobState final_state = JobState::kFailed;
  JobConfig final_config;
  std::vector<ThroughputSample> history;
  Duration jct = 0.0;
  /// Wall-clock time from injection to recovery of >= 80% of pre-fault
  /// throughput; < 0 when not applicable / never recovered.
  Duration recovery_time = -1.0;
  /// Simulator events executed by this scenario (throughput accounting for
  /// sweep benches).
  uint64_t executed_events = 0;
};

/// Runs one training job under the given control plane on a fresh
/// simulated cluster. The workhorse behind Figs 7, 10, 12, 13.
SingleJobResult RunSingleJob(const SingleJobScenario& scenario);

/// Per-job outcome of a fleet run.
struct FleetJobOutcome {
  std::string name;
  ModelKind model = ModelKind::kWideDeep;
  bool used_dlrover = false;
  bool hot_ps = false;
  MisconfigKind misconfig = MisconfigKind::kOverProvisioned;
  bool completed = false;
  std::string fail_reason;
  Duration jct = 0.0;
  Duration pending_time = 0.0;
  int requested_cpus = 0;
  uint64_t total_steps = 0;
  int max_workers_quota = 40;
  double avg_worker_cpu_util = 0.0;
  double avg_ps_cpu_util = 0.0;
  double avg_worker_mem_util = 0.0;
  double avg_ps_mem_util = 0.0;
  /// Batches actually committed by the horizon (equals total_steps when
  /// completed); the fleet's goodput basis for the resilience bench.
  uint64_t batches_done = 0;
  JobStats stats;
};

struct FleetScenario {
  /// Fraction of jobs managed by DLRover-RM; the rest run manual-user
  /// static configs (models the paper's progressive migration, Fig 14).
  double dlrover_fraction = 1.0;
  WorkloadOptions workload;
  /// Production-like nodes (the paper's fleet runs on large hosts, which
  /// is what makes heavy CPU over-provisioning schedulable at all).
  ClusterOptions cluster{/*num_nodes=*/60, {64.0, GiB(384)}};
  FailureInjectorOptions failures;
  /// Control-plane channel model. Disabled by default: with
  /// `control.enabled == false` no channel is constructed and every run is
  /// byte-identical to the direct-call control plane.
  ControlChannelOptions control;
  BackgroundLoadOptions background;
  bool enable_background = true;
  bool enable_failures = true;
  /// Pre-populate the brain's config DB with historical records (a
  /// production deployment has months of them; disable to study the
  /// cold-start fleet).
  bool seed_history = true;
  Duration horizon = Hours(36);
  uint64_t seed = 99;
  /// Disables the O(1) hot-path optimizations (incremental cluster
  /// accounting, memoized iteration model) and reruns their per-call scan
  /// paths instead. Outcomes are identical either way; bench_fleet_scale
  /// uses this as the before/after baseline.
  bool legacy_hot_path = false;
};

struct FleetResult {
  std::vector<FleetJobOutcome> jobs;
  uint64_t pods_preempted = 0;
  uint64_t crashes_injected = 0;
  uint64_t stragglers_injected = 0;
  uint64_t node_faults_injected = 0;
  /// Ground-truth fault audit log from the injector (sharded runs append
  /// per-cell logs in cell order, independent of lane count).
  std::vector<FaultRecord> fault_log;
  /// Node-health state transitions observed by the detector (empty unless
  /// ClusterOptions::enable_node_health); same cell-order merge rule.
  std::vector<NodeHealthEvent> health_log;
  uint64_t nodes_cordoned = 0;
  uint64_t nodes_uncordoned = 0;
  /// Control-plane telemetry; all zero/empty unless the scenario enables the
  /// channel. Sharded runs sum the stats and append per-cell event logs in
  /// cell order (independent of lane count).
  ControlChannelStats control_stats;
  std::vector<ControlEvent> control_log;
  uint64_t control_faults_injected = 0;
  /// Fencing / exactly-once counters aggregated over all jobs.
  uint64_t plans_fenced = 0;
  uint64_t stale_plan_applies = 0;
  uint64_t shard_reports_rejected = 0;
  uint64_t shard_reports_expired = 0;
  /// Simulator events executed by this scenario (throughput accounting for
  /// sweep benches).
  uint64_t executed_events = 0;

  int Completed() const;
  double CompletionRate() const;
  Distribution JctDistribution(bool dlrover_only, bool manual_only) const;
};

/// Runs a whole synthetic production trace on a shared cluster with
/// background load and failure injection. The workhorse behind Table 4 and
/// Figs 3, 14, 15.
FleetResult RunFleet(const FleetScenario& scenario);

class JobMaster;

/// One fleet's worth of simulation state bound to an externally-owned
/// Simulator: the cluster, background load, failure injector, brain, and
/// the arrival schedule for a generated trace. RunFleet is exactly
/// {construct; sim.RunUntil(horizon); Collect()}; the sharded fleet runner
/// builds one FleetSimulation per shard, each on its shard-local simulator,
/// which is what lets the whole scenario stack run inside the sharded
/// engine unchanged.
///
/// Construction replicates the historical RunFleet setup order event for
/// event (cluster pump, background, injector, brain round, arrivals) and
/// RNG stream for RNG stream, so a single FleetSimulation driven to the
/// horizon produces byte-identical results to the pre-refactor monolith.
class FleetSimulation {
 public:
  /// `trace` is the slice of generated jobs this fleet owns; RunFleet
  /// passes the full trace. The scenario's workload options are not
  /// re-generated here — the caller controls slicing.
  FleetSimulation(Simulator* sim, const FleetScenario& scenario,
                  std::vector<GeneratedJob> trace);
  /// Stops the brain, then unwinds members in the same order the
  /// monolithic RunFleet unwound its locals.
  ~FleetSimulation();

  FleetSimulation(const FleetSimulation&) = delete;
  FleetSimulation& operator=(const FleetSimulation&) = delete;

  Cluster& cluster() { return cluster_; }
  ClusterBrain& brain() { return *brain_; }
  FailureInjector* injector() { return injector_.get(); }
  ControlChannel* channel() { return channel_.get(); }
  Simulator* sim() { return sim_; }
  const std::vector<GeneratedJob>& trace() const { return trace_; }

  /// Harvests per-job outcomes after the horizon has run. Call once.
  FleetResult Collect();

 private:
  void ScheduleArrivals();

  Simulator* sim_;
  FleetScenario scenario_;
  std::vector<GeneratedJob> trace_;
  /// Declared before cluster_ (and therefore destroyed after it, and after
  /// the masters that unregister from it on destruction). Null unless the
  /// scenario enables the channel.
  std::unique_ptr<ControlChannel> channel_;
  Cluster cluster_;
  std::unique_ptr<BackgroundLoad> background_;
  std::unique_ptr<FailureInjector> injector_;
  std::unique_ptr<ClusterBrain> brain_;
  std::vector<std::unique_ptr<TrainingJob>> jobs_;
  std::vector<std::unique_ptr<JobMaster>> masters_;
  std::vector<FleetJobOutcome> outcomes_;
};

/// The deliberately small configuration auto-scalers cold-start from.
JobConfig ColdStartConfig(ModelKind kind);

/// Populates `db` with historical job records whose final configurations
/// sit near (but not exactly at) the well-tuned optimum for each model —
/// the kind of history a production config DB accumulates, and what the
/// warm-start ablation (Fig 9) draws on.
void SeedHistoricalRecords(ConfigDb* db, uint64_t seed,
                           int records_per_model = 8);

/// The seeded historical database for `seed` (default records_per_model),
/// built once per seed and cached for the lifetime of the process.
/// Scenario runs share it read-only: rebuilding it per scenario used to
/// dominate InitialConfigFor, and the cache is mutex-guarded so concurrent
/// sweep workers can warm-start without re-deriving history.
const ConfigDb& SeededHistoryFor(uint64_t seed);

/// The JobMetadata a scenario's job would be submitted with.
JobMetadata MetadataFor(ModelKind model, uint64_t batch_size,
                        uint64_t total_steps);

}  // namespace dlrover

#endif  // DLROVER_HARNESS_EXPERIMENT_H_
