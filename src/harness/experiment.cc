#include "harness/experiment.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "baselines/elastic_scheduler.h"
#include "baselines/optimus.h"
#include "master/job_master.h"
#include "runtime/thread_pool.h"
#include "sim/simulator.h"

namespace dlrover {

std::string SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kManualTuned:
      return "well-tuned (w/o DLRover)";
    case SchedulerKind::kManualUser:
      return "user-config (w/o DLRover)";
    case SchedulerKind::kDlrover:
      return "DLRover-RM";
    case SchedulerKind::kEs:
      return "ES";
    case SchedulerKind::kOptimus:
      return "Optimus";
    case SchedulerKind::kNoIntervention:
      return "no intervention";
    case SchedulerKind::kTraditional:
      return "traditional handling";
  }
  return "unknown";
}

JobConfig ColdStartConfig(ModelKind kind) {
  const ModelProfile profile = GetModelProfile(kind);
  JobConfig config;
  config.num_workers = 6;
  config.num_ps = 2;
  config.worker_cpu = 6.0;
  config.ps_cpu = 4.0;
  config.worker_memory = profile.worker_static_bytes + GiB(1);
  config.ps_memory = GiB(12);
  return config;
}

JobMetadata MetadataFor(ModelKind model, uint64_t batch_size,
                        uint64_t total_steps) {
  const ModelProfile profile = GetModelProfile(model);
  JobMetadata meta;
  meta.user = "scenario-user";
  meta.model = model;
  meta.batch_size = batch_size;
  meta.total_steps = total_steps;
  meta.declared_model_bytes =
      profile.dense_param_bytes +
      profile.EmbeddingBytesAt(static_cast<double>(total_steps) *
                               static_cast<double>(batch_size));
  return meta;
}

void SeedHistoricalRecords(ConfigDb* db, uint64_t seed,
                           int records_per_model) {
  Rng rng(seed * 3571 + 21);
  for (ModelKind kind : {ModelKind::kWideDeep, ModelKind::kXDeepFm,
                         ModelKind::kDcn}) {
    const JobConfig tuned = WellTunedConfig(kind);
    for (int i = 0; i < records_per_model; ++i) {
      JobRecord record;
      record.meta = MetadataFor(kind, 512,
                                180000 + 10000 * static_cast<uint64_t>(
                                             rng.UniformInt(int64_t{0}, int64_t{6})));
      record.meta.user = "scenario-user";
      record.meta.declared_model_bytes *= rng.LogNormal(1.0, 0.15);
      // Historical configs hover a bit below the optimum: users converge to
      // "good enough", leaving stage-2 auto-scaling with real work to do.
      JobConfig config = tuned;
      config.num_workers = std::max(
          2, static_cast<int>(tuned.num_workers * 0.8) +
                 static_cast<int>(rng.UniformInt(int64_t{-3}, int64_t{3})));
      config.num_ps = std::max(
          1, tuned.num_ps - 1 + static_cast<int>(rng.UniformInt(int64_t{-1},
                                                                int64_t{1})));
      config.worker_cpu =
          std::max(2.0, tuned.worker_cpu + 2.0 * rng.Normal(0.0, 0.6));
      config.ps_cpu = std::max(2.0, tuned.ps_cpu + rng.Normal(0.0, 1.0));
      config.worker_memory = tuned.worker_memory * rng.LogNormal(1.05, 0.08);
      config.ps_memory = tuned.ps_memory * rng.LogNormal(1.15, 0.08);
      record.final_config = config;
      record.final_throughput = 50000.0 * rng.LogNormal(1.0, 0.2);
      record.jct = Minutes(rng.Uniform(22.0, 55.0));
      record.completed = true;
      db->Insert(record);

      // Small-quota jobs converge to a different shape: few workers, each
      // run wide (near the parallelism saturation point). Seed those too so
      // quota-limited jobs warm-start sensibly.
      JobRecord small = record;
      const int quota =
          static_cast<int>(rng.UniformInt(int64_t{8}, int64_t{16}));
      small.meta.max_workers_quota = quota;
      small.final_config.num_workers = quota;
      // Fewer workers does NOT mean fewer PSes: lookup latency (Eqn 5)
      // scales with 1/p regardless of w, so small jobs still converge to a
      // handful of parameter servers.
      small.final_config.num_ps =
          4 + static_cast<int>(rng.UniformInt(int64_t{0}, int64_t{2}));
      small.final_config.worker_cpu =
          std::max(8.0, 11.0 + rng.Normal(0.0, 0.8));
      small.final_config.ps_cpu = std::max(4.0, 7.0 + rng.Normal(0.0, 1.0));
      small.final_config.ps_memory =
          config.ps_memory * config.num_ps / small.final_config.num_ps;
      small.final_throughput = 20000.0 * rng.LogNormal(1.0, 0.2);
      db->Insert(small);
    }
  }
}

const ConfigDb& SeededHistoryFor(uint64_t seed) {
  static std::mutex mu;
  // unique_ptr values keep the returned reference stable across rehashes.
  static std::unordered_map<uint64_t, std::unique_ptr<const ConfigDb>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(seed);
  if (it == cache.end()) {
    auto db = std::make_unique<ConfigDb>();
    SeedHistoricalRecords(db.get(), seed);
    it = cache.emplace(seed, std::move(db)).first;
  }
  return *it->second;
}

namespace {

bool IsAutoScaler(SchedulerKind kind) {
  return kind == SchedulerKind::kDlrover || kind == SchedulerKind::kEs ||
         kind == SchedulerKind::kOptimus;
}

JobSpec SpecFor(const SingleJobScenario& scenario) {
  JobSpec spec;
  spec.name = "job";
  spec.model = scenario.model;
  spec.batch_size = scenario.batch_size;
  spec.total_steps = scenario.total_steps;
  spec.seed = scenario.seed * 7919 + 13;
  switch (scenario.scheduler) {
    case SchedulerKind::kDlrover:
      spec.data_mode = DataMode::kDynamicSharding;
      spec.use_flash_checkpoint = true;
      break;
    case SchedulerKind::kEs:
    case SchedulerKind::kOptimus:
      // Charitable: these baselines get elastic data serving so the
      // comparison isolates the scheduling algorithm (as in Fig 10), but
      // they checkpoint through RDS like their original systems.
      spec.data_mode = DataMode::kDynamicSharding;
      spec.use_flash_checkpoint = false;
      break;
    default:
      spec.data_mode = DataMode::kStaticPartition;
      spec.use_flash_checkpoint = false;
      break;
  }
  return spec;
}

JobConfig InitialConfigFor(const SingleJobScenario& scenario) {
  if (scenario.initial.has_value()) return *scenario.initial;
  if (IsAutoScaler(scenario.scheduler)) {
    if (!scenario.warm_start) return ColdStartConfig(scenario.model);
    // Both branches read the per-seed cached history: rebuilding the DB on
    // every call (twice per seed for the two scheduler families) was pure
    // rework — the records are fully determined by the seed.
    const ConfigDb& db = SeededHistoryFor(scenario.seed);
    if (scenario.scheduler == SchedulerKind::kDlrover) {
      // Warm-starting from historical records is stage 1 of DLRover-RM.
      WarmStartOptions options;
      options.default_config = ColdStartConfig(scenario.model);
      return WarmStartConfig(
          db, MetadataFor(scenario.model, scenario.batch_size,
                          scenario.total_steps),
          options);
    }
    // ES / Optimus have no warm-starting *algorithm*, but their users also
    // resubmit yesterday's configuration: start them from one historical
    // record rather than DLRover's smoothed top-k blend.
    const auto similar = db.TopKSimilar(
        MetadataFor(scenario.model, scenario.batch_size,
                    scenario.total_steps),
        1);
    if (!similar.empty()) return similar.back().final_config;
    return TypicalUserStart(scenario.model);
  }
  if (scenario.scheduler == SchedulerKind::kManualUser) {
    Rng rng(scenario.seed * 31 + 7);
    return UserMisconfiguredConfig(scenario.model, rng);
  }
  return WellTunedConfig(scenario.model);
}

/// Finds a running pod of the job by role substring ("-ps-" / "-worker-").
PodId FindJobPod(const Cluster& cluster, const std::string& role) {
  PodId found = 0;
  cluster.VisitPods([&](const Pod& pod) {
    if (found != 0) return;
    if (pod.phase != PodPhase::kRunning) return;
    if (pod.spec.name.find(role) != std::string::npos) found = pod.id;
  });
  return found;
}

/// Simple stop-and-restart fault handler: the pre-DLRover production
/// behaviour. Detects a persistent throughput collapse and redeploys the
/// job with the same configuration (fresh pods, rebalanced parameters).
class TraditionalWatchdog {
 public:
  TraditionalWatchdog(Simulator* sim, TrainingJob* job)
      : sim_(sim), job_(job),
        task_(sim, Seconds(30), [this] { Tick(); }) {
    task_.Start();
  }

 private:
  void Tick() {
    if (job_->finished()) {
      task_.Stop();
      return;
    }
    const double throughput = job_->MeasuredThroughput();
    if (throughput <= 0.0) return;
    best_ = std::max(best_, throughput);
    if (throughput < 0.5 * best_) {
      ++slow_ticks_;
    } else {
      slow_ticks_ = 0;
    }
    const bool cooled =
        sim_->Now() - last_intervention_ > Minutes(15) ||
        last_intervention_ == 0.0;
    if (slow_ticks_ >= 2 && cooled &&
        job_->state() == JobState::kRunning) {
      slow_ticks_ = 0;
      last_intervention_ = sim_->Now();
      best_ = 0.0;  // re-learn the healthy level after redeploy
      (void)job_->ApplyPlan(job_->config(), MigrationMode::kStopAndRestart);
    }
  }

  Simulator* sim_;
  TrainingJob* job_;
  double best_ = 0.0;
  int slow_ticks_ = 0;
  SimTime last_intervention_ = 0.0;
  PeriodicTask task_;
};

Duration ComputeRecoveryTime(const std::vector<ThroughputSample>& history,
                             SimTime injected_at) {
  if (injected_at <= 0.0) return -1.0;
  RunningStat before;
  for (const ThroughputSample& s : history) {
    if (s.time < injected_at && s.time > injected_at - Minutes(5) &&
        s.samples_per_sec > 0.0) {
      before.Add(s.samples_per_sec);
    }
  }
  if (before.count() == 0) return -1.0;
  const double target = 0.8 * before.mean();
  for (const ThroughputSample& s : history) {
    if (s.time <= injected_at + Seconds(30)) continue;
    if (s.samples_per_sec >= target) return s.time - injected_at;
  }
  return -1.0;
}

}  // namespace

SingleJobResult RunSingleJob(const SingleJobScenario& scenario) {
  Simulator sim;
  ClusterOptions cluster_options = scenario.cluster;
  cluster_options.seed = scenario.seed * 101 + 3;
  Cluster cluster(&sim, cluster_options);

  const JobSpec spec = SpecFor(scenario);
  const JobConfig initial = InitialConfigFor(scenario);
  EnvironmentProfile env;
  auto job = std::make_unique<TrainingJob>(&sim, &cluster, spec, initial, env);
  job->Start();

  // Control plane.
  std::unique_ptr<ClusterBrain> brain;
  std::unique_ptr<JobMaster> master;
  std::unique_ptr<ElasticSchedulerPolicy> es;
  std::unique_ptr<OptimusPolicy> optimus;
  std::unique_ptr<PolicyDriver> driver;
  std::unique_ptr<TraditionalWatchdog> watchdog;

  switch (scenario.scheduler) {
    case SchedulerKind::kDlrover: {
      BrainOptions options;
      options.round_interval = scenario.round_interval;
      options.budget = cluster.TotalCapacity();
      options.plan.nsga2.seed = scenario.seed * 17 + 5;
      options.plan.nsga2.pool = &SharedThreadPool();
      brain = std::make_unique<ClusterBrain>(&sim, options);
      brain->AttachCluster(&cluster);
      if (scenario.warm_start) {
        brain->config_db() = SeededHistoryFor(scenario.seed);
      }
      brain->Manage(job.get(),
                    MetadataFor(scenario.model, scenario.batch_size,
                                scenario.total_steps));
      brain->Start();
      master = std::make_unique<JobMaster>(&sim, job.get());
      master->Start();
      break;
    }
    case SchedulerKind::kEs: {
      es = std::make_unique<ElasticSchedulerPolicy>();
      driver = std::make_unique<PolicyDriver>(&sim, es.get(),
                                              scenario.round_interval);
      driver->AddJob(job.get());
      driver->Start();
      break;
    }
    case SchedulerKind::kOptimus: {
      optimus = std::make_unique<OptimusPolicy>();
      driver = std::make_unique<PolicyDriver>(&sim, optimus.get(),
                                              scenario.round_interval);
      driver->AddJob(job.get());
      driver->Start();
      break;
    }
    case SchedulerKind::kTraditional:
      watchdog = std::make_unique<TraditionalWatchdog>(&sim, job.get());
      break;
    default:
      break;  // static: nobody steers
  }

  // Scripted fault injection.
  SimTime injected_at = -1.0;
  if (scenario.injection.kind != ScenarioInjection::Kind::kNone) {
    sim.ScheduleAt(scenario.injection.at, [&] {
      const std::string role =
          scenario.injection.kind == ScenarioInjection::Kind::kHotPs
              ? "-ps-"
              : "-worker-";
      const PodId victim = FindJobPod(cluster, role);
      if (victim != 0) {
        cluster.DegradePod(victim, scenario.injection.speed);
        injected_at = sim.Now();
      }
    });
  }

  sim.RunUntil(scenario.horizon);

  SingleJobResult result;
  result.stats = job->stats();
  result.final_state = job->state();
  result.final_config = job->config();
  result.history = job->history();
  result.jct = job->finished() ? job->stats().Jct() : scenario.horizon;
  result.recovery_time = ComputeRecoveryTime(result.history, injected_at);
  result.executed_events = sim.executed_events();
  return result;
}

int FleetResult::Completed() const {
  int count = 0;
  for (const auto& outcome : jobs) {
    if (outcome.completed) ++count;
  }
  return count;
}

double FleetResult::CompletionRate() const {
  if (jobs.empty()) return 0.0;
  return static_cast<double>(Completed()) / static_cast<double>(jobs.size());
}

Distribution FleetResult::JctDistribution(bool dlrover_only,
                                          bool manual_only) const {
  Distribution dist;
  for (const auto& outcome : jobs) {
    if (!outcome.completed) continue;
    if (dlrover_only && !outcome.used_dlrover) continue;
    if (manual_only && outcome.used_dlrover) continue;
    dist.Add(outcome.jct);
  }
  return dist;
}

namespace {

/// Setup that must precede the Cluster constructor (its pump task captures
/// the dispatch mode); called from FleetSimulation's member-init list.
Simulator* PrepareFleetSim(Simulator* sim, const FleetScenario& scenario) {
  sim->set_boxed_callbacks(scenario.legacy_hot_path);
  return sim;
}

ClusterOptions FleetClusterOptions(const FleetScenario& scenario) {
  ClusterOptions cluster_options = scenario.cluster;
  cluster_options.seed = scenario.seed * 13 + 1;
  cluster_options.incremental_accounting = !scenario.legacy_hot_path;
  cluster_options.legacy_pod_index = scenario.legacy_hot_path;
  cluster_options.use_placement_index = !scenario.legacy_hot_path;
  return cluster_options;
}

}  // namespace

FleetSimulation::FleetSimulation(Simulator* sim, const FleetScenario& scenario,
                                 std::vector<GeneratedJob> trace)
    : sim_(PrepareFleetSim(sim, scenario)),
      scenario_(scenario),
      trace_(std::move(trace)),
      cluster_(sim_, FleetClusterOptions(scenario)) {
  if (scenario_.control.enabled) {
    ControlChannelOptions control_options = scenario_.control;
    // Per-cell channel stream: sharded runs hand each cell a distinct
    // scenario seed, so every cell's channel draws are cell-local and the
    // merged fleet is byte-identical at any lane count.
    control_options.seed = scenario_.control.seed + scenario_.seed * 131;
    channel_ = std::make_unique<ControlChannel>(sim_, control_options);
    cluster_.set_control_channel(channel_.get());
  }
  if (scenario_.enable_background) {
    BackgroundLoadOptions options = scenario_.background;
    options.seed = scenario_.seed * 7 + 77;
    background_ = std::make_unique<BackgroundLoad>(sim_, &cluster_, options);
    background_->Start();
  }
  if (scenario_.enable_failures) {
    FailureInjectorOptions options = scenario_.failures;
    options.seed = scenario_.seed * 3 + 11;
    injector_ = std::make_unique<FailureInjector>(sim_, &cluster_, options);
    if (channel_ != nullptr) injector_->set_control_channel(channel_.get());
    injector_->Start();
  }

  BrainOptions brain_options;
  brain_options.budget = cluster_.TotalCapacity() * 0.55;
  brain_options.plan.nsga2.population = 32;
  brain_options.plan.nsga2.generations = 20;
  brain_options.plan.nsga2.seed = scenario_.seed * 19 + 2;
  brain_options.plan.nsga2.pool = &SharedThreadPool();
  brain_ = std::make_unique<ClusterBrain>(sim_, brain_options);
  brain_->AttachCluster(&cluster_);
  if (scenario_.seed_history) {
    brain_->config_db() = SeededHistoryFor(scenario_.seed * 7 + 5);
  }
  brain_->Start();

  ScheduleArrivals();
}

FleetSimulation::~FleetSimulation() {
  // Jobs (and the brain referencing them) must outlive the simulator's
  // pending events; members then unwind in reverse declaration order —
  // outcomes, masters, jobs, brain, injector, background, cluster — exactly
  // as the monolithic RunFleet's locals did.
  brain_->Stop();
}

void FleetSimulation::ScheduleArrivals() {
  Rng rng(scenario_.seed * 23 + 9);
  outcomes_.resize(trace_.size());
  jobs_.resize(trace_.size());

  for (size_t i = 0; i < trace_.size(); ++i) {
    const GeneratedJob& gen = trace_[i];
    FleetJobOutcome& outcome = outcomes_[i];
    outcome.name = gen.spec.name;
    outcome.model = gen.spec.model;
    outcome.hot_ps = gen.hot_ps;
    outcome.total_steps = gen.spec.total_steps;
    outcome.max_workers_quota = gen.max_workers;
    outcome.used_dlrover = rng.Bernoulli(scenario_.dlrover_fraction);
    MisconfigKind misconfig = MisconfigKind::kOverProvisioned;
    Rng config_rng(gen.spec.seed ^ 0xabcdef);
    JobConfig manual_config =
        UserMisconfiguredConfig(gen.spec.model, config_rng, &misconfig);
    // Scale to the job's size class (small jobs stay under ~100 CPUs).
    // Fewer PSes hold proportionally more table each: keep total PS memory.
    manual_config.num_workers = std::max(
        2, static_cast<int>(manual_config.num_workers * gen.size_factor));
    const int scaled_ps = std::max(
        1, static_cast<int>(manual_config.num_ps * gen.size_factor + 0.5));
    manual_config.ps_memory *=
        static_cast<double>(manual_config.num_ps) / scaled_ps;
    manual_config.num_ps = scaled_ps;
    outcome.misconfig = misconfig;

    sim_->ScheduleAt(gen.arrival, [this, i, manual_config] {
      const GeneratedJob& g = trace_[i];
      JobSpec spec = g.spec;
      spec.memoize_iteration = !scenario_.legacy_hot_path;
      spec.legacy_shard_index = scenario_.legacy_hot_path;
      JobConfig config;
      if (outcomes_[i].used_dlrover) {
        spec.data_mode = DataMode::kDynamicSharding;
        spec.use_flash_checkpoint = true;
        JobMetadata meta = g.meta;
        meta.max_workers_quota = g.max_workers;
        config = brain_->WarmStart(meta);
        if (config == brain_->options().warm_start.default_config) {
          config = ColdStartConfig(g.spec.model);
        }
        config.num_workers = std::min(config.num_workers, g.max_workers);
      } else {
        spec.data_mode = DataMode::kStaticPartition;
        spec.use_flash_checkpoint = false;
        spec.max_restarts = 3;  // Kubeflow-style bounded restart policy
        config = manual_config;
      }
      if (g.hot_ps) {
        // TF tensor-granularity placement: one PS carries an outsized
        // parameter share.
        spec.ps_shares.assign(static_cast<size_t>(config.num_ps), 1.0);
        spec.ps_shares[0] = 3.5;
      }
      auto job = std::make_unique<TrainingJob>(sim_, &cluster_, spec, config);
      outcomes_[i].requested_cpus = static_cast<int>(config.TotalCpu());
      if (outcomes_[i].used_dlrover) {
        JobMetadata meta = g.meta;
        meta.max_workers_quota = g.max_workers;
        brain_->Manage(job.get(), meta);
        auto master = std::make_unique<JobMaster>(sim_, job.get());
        if (channel_ != nullptr) master->AttachChannel(channel_.get());
        master->Start();
        masters_.push_back(std::move(master));
      }
      job->Start();
      jobs_[i] = std::move(job);
    });
  }
}

FleetResult FleetSimulation::Collect() {
  FleetResult result;
  result.executed_events = sim_->executed_events();
  result.pods_preempted = cluster_.counters().pods_preempted;
  if (injector_ != nullptr) {
    result.crashes_injected = injector_->crashes_injected();
    result.stragglers_injected = injector_->stragglers_injected();
    result.node_faults_injected = injector_->node_faults_injected();
    result.control_faults_injected = injector_->control_faults_injected();
    result.fault_log = injector_->fault_log();
  }
  if (channel_ != nullptr) {
    result.control_stats = channel_->stats();
    result.control_log = channel_->log();
  }
  if (cluster_.health() != nullptr) {
    result.health_log = cluster_.health()->log();
  }
  result.nodes_cordoned = cluster_.counters().nodes_cordoned;
  result.nodes_uncordoned = cluster_.counters().nodes_uncordoned;
  for (size_t i = 0; i < trace_.size(); ++i) {
    FleetJobOutcome& outcome = outcomes_[i];
    TrainingJob* job = jobs_[i].get();
    if (job == nullptr) {
      outcome.completed = false;
      outcome.fail_reason = "never started";
      result.jobs.push_back(outcome);
      continue;
    }
    outcome.stats = job->stats();
    outcome.batches_done = job->batches_done();
    result.plans_fenced += static_cast<uint64_t>(outcome.stats.plans_fenced);
    result.stale_plan_applies +=
        static_cast<uint64_t>(outcome.stats.stale_plan_applies);
    result.shard_reports_rejected +=
        static_cast<uint64_t>(outcome.stats.shard_reports_rejected);
    result.shard_reports_expired +=
        static_cast<uint64_t>(outcome.stats.shard_reports_expired);
    outcome.completed = job->state() == JobState::kCompleted;
    outcome.fail_reason = job->state() == JobState::kFailed
                              ? job->stats().fail_reason
                              : (outcome.completed ? "" : "horizon");
    outcome.jct = outcome.completed ? job->stats().Jct()
                                    : scenario_.horizon - trace_[i].arrival;
    outcome.pending_time =
        job->stats().first_training_time >= 0.0
            ? job->stats().first_training_time - job->stats().submit_time
            : scenario_.horizon - trace_[i].arrival;
    RunningStat wcpu, pcpu, wmem, pmem;
    for (const ThroughputSample& s : job->history()) {
      if (s.samples_per_sec <= 0.0) continue;
      wcpu.Add(s.worker_cpu_util);
      pcpu.Add(s.ps_cpu_util);
      wmem.Add(s.worker_mem_util);
      pmem.Add(s.ps_mem_util);
    }
    outcome.avg_worker_cpu_util = wcpu.mean();
    outcome.avg_ps_cpu_util = pcpu.mean();
    outcome.avg_worker_mem_util = wmem.mean();
    outcome.avg_ps_mem_util = pmem.mean();
    result.jobs.push_back(outcome);
  }
  return result;
}

FleetResult RunFleet(const FleetScenario& scenario) {
  Simulator sim;
  WorkloadOptions workload_options = scenario.workload;
  workload_options.seed = scenario.seed * 1009 + 4;
  // Trace generation draws only from its own RNG stream and schedules
  // nothing, so hoisting it above the fleet setup leaves the event
  // sequence — and therefore every outcome — byte-identical.
  FleetSimulation fleet(&sim, scenario,
                        WorkloadGenerator(workload_options).Generate());
  sim.RunUntil(scenario.horizon);
  return fleet.Collect();
}

}  // namespace dlrover
