#ifndef DLROVER_HARNESS_SWEEP_H_
#define DLROVER_HARNESS_SWEEP_H_

#include <cstddef>
#include <future>
#include <memory>
#include <vector>

#include "harness/experiment.h"
#include "runtime/thread_pool.h"

namespace dlrover {

/// Options for a scenario sweep.
struct SweepOptions {
  /// Worker threads for the sweep. 0 = use the process-wide
  /// SharedThreadPool() (sized to the hardware concurrency); any other
  /// value builds a dedicated pool of exactly that many threads, which the
  /// determinism tests use to compare 1-, 2-, and N-thread sweeps.
  size_t num_threads = 0;
  /// Optional external pool (non-owning); overrides num_threads when set.
  ThreadPool* pool = nullptr;
};

/// Fans independent scenario runs out across a thread pool with
/// deterministic, submission-ordered results. Every paper figure is a
/// seed-sweep of fully isolated simulations — each scenario builds its own
/// Simulator, Cluster, and Rng chain from its seed — so the fan-out is
/// embarrassingly parallel and the result vector is byte-identical at any
/// thread count: results land in the slot of the scenario that produced
/// them, never in completion order.
///
/// The engine is generic over the work item: Map() runs any callable over a
/// scenario list, and the RunSingleJobSweep / RunFleetSweep helpers cover
/// the two workhorse entry points every bench binary uses.
class SweepEngine {
 public:
  explicit SweepEngine(const SweepOptions& options = {});

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Threads serving this sweep (for reporting).
  size_t num_threads() const { return pool_->size(); }

  /// Runs `fn(items[i])` for every item, in parallel, returning results in
  /// submission order. `fn` must be safe to call concurrently with itself
  /// (scenario runs are: they share no mutable state). Exceptions from `fn`
  /// propagate to the caller after all submitted tasks have drained.
  template <typename Item, typename Fn>
  auto Map(const std::vector<Item>& items, Fn fn)
      -> std::vector<decltype(fn(items[0]))> {
    using R = decltype(fn(items[0]));
    std::vector<R> results(items.size());
    std::vector<std::future<void>> pending;
    pending.reserve(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      pending.push_back(
          pool_->Submit([&results, &items, &fn, i] { results[i] = fn(items[i]); }));
    }
    // Drain everything before rethrowing so no task can touch `results`
    // after this frame unwinds.
    std::exception_ptr first_error;
    for (auto& f : pending) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

  std::vector<SingleJobResult> Run(
      const std::vector<SingleJobScenario>& scenarios);
  std::vector<FleetResult> Run(const std::vector<FleetScenario>& scenarios);

 private:
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // owned_pool_.get() or the external/shared pool
};

/// One-shot conveniences: build an engine, sweep, return the results.
std::vector<SingleJobResult> RunSingleJobSweep(
    const std::vector<SingleJobScenario>& scenarios,
    const SweepOptions& options = {});
std::vector<FleetResult> RunFleetSweep(
    const std::vector<FleetScenario>& scenarios,
    const SweepOptions& options = {});

}  // namespace dlrover

#endif  // DLROVER_HARNESS_SWEEP_H_
