#ifndef DLROVER_ELASTIC_SHARD_QUEUE_H_
#define DLROVER_ELASTIC_SHARD_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace dlrover {

/// A contiguous slice of the training data measured in batches
/// [start_batch, end_batch). Shards carry a unique index so completions and
/// re-queues can be audited.
struct DataShard {
  uint64_t index = 0;
  uint64_t start_batch = 0;
  uint64_t end_batch = 0;

  uint64_t batches() const { return end_batch - start_batch; }
};

/// Per-shard progress a trainer reports when snapshotting the queue: how
/// many prefix batches of an outstanding shard are already reflected in
/// committed model state (and must not be re-served after a restore).
struct ShardProgress {
  uint64_t shard_index = 0;
  uint64_t processed_batches = 0;
};

/// A consistent cut of the queue's data-consumption state, suitable for
/// embedding in a model checkpoint. `pending` holds every batch range that
/// still needs serving (re-queued remainders plus the unprocessed suffix of
/// each outstanding shard); shard indices are not preserved — restore
/// assigns fresh ones so stale reports from pre-restore workers are
/// rejected rather than double-counted.
struct ShardQueueSnapshot {
  uint64_t cursor = 0;
  uint64_t completed_batches = 0;
  std::vector<DataShard> pending;
};

/// Options for the dynamic data sharding service (paper Section 5.1).
struct ShardQueueOptions {
  /// Total number of batches in the training job (its step budget).
  uint64_t total_batches = 200000;
  /// Default shard size in batches (paper uses 64 / 128 / 256).
  uint64_t default_shard_batches = 128;
  /// Lower bound when shrinking shards for stragglers.
  uint64_t min_shard_batches = 16;
  /// Mirrors outstanding-shard bookkeeping through the pre-optimization
  /// std::map (a tree-node allocation per dispatch), reconstructing the old
  /// cost model for before/after benches. Results are identical either way.
  bool legacy_index = false;
};

/// The shards queue: partitions training data into numerous small
/// variably-sized shards served on demand. Guarantees exactly-once
/// consumption: every batch is delivered to completion exactly once even
/// across worker failures (unfinished shards are re-queued) and scale
/// events (new workers just pull from the queue; no re-partitioning).
///
/// Thread-safe: all methods may be called concurrently from worker threads
/// (ExecMode::kThreads). Every dispatch — including the re-serve of a
/// failed shard's remainder — gets a fresh shard index, so a stale report
/// from a worker that was already presumed dead (the report-after-timeout
/// double-dispatch hazard) names a retired index and is rejected instead of
/// double-counting the re-served data.
class ShardQueue {
 public:
  explicit ShardQueue(const ShardQueueOptions& options);

  /// Hands out the next shard, at most `max_batches` long (0 = default
  /// size). Re-queued shards are served before fresh data. Returns
  /// kNotFound when all data has been handed out and nothing was re-queued
  /// (workers should then drain and exit).
  StatusOr<DataShard> NextShard(uint64_t max_batches = 0);

  /// Blocking NextShard for multi-threaded workers: when the queue is
  /// momentarily empty but other workers still hold outstanding shards
  /// (which may fail and be re-queued), waits instead of returning. Returns
  /// kNotFound only when no data can ever be served again — everything is
  /// completed or held by nobody.
  StatusOr<DataShard> WaitNextShard(uint64_t max_batches = 0);

  /// WaitNextShard with a wall-clock deadline: returns kDeadlineExceeded
  /// after `timeout_seconds` without a servable shard. A blocked worker
  /// would otherwise wait forever when the holder of the last outstanding
  /// shard dies without reporting — the timeout hands control back so a
  /// supervisor (or the worker itself) can decide to retry or give up.
  StatusOr<DataShard> WaitNextShardFor(double timeout_seconds,
                                       uint64_t max_batches = 0);

  /// Marks a previously delivered shard fully processed.
  Status ReportCompleted(const DataShard& shard);

  /// Returns a shard delivered to a failed worker back to the queue.
  /// `processed_batches` of its prefix are counted as done (they were
  /// reflected in committed gradients before the failure); the remainder is
  /// re-served. Passing 0 re-queues the whole shard.
  Status ReportFailed(const DataShard& shard, uint64_t processed_batches = 0);

  /// Batches fully processed so far.
  uint64_t completed_batches() const;
  /// Batches currently assigned to workers.
  uint64_t outstanding_batches() const;
  /// True when every batch of the dataset has been completed.
  bool AllDone() const;
  /// True when no fresh or re-queued data remains to hand out.
  bool Exhausted() const;

  uint64_t total_batches() const { return options_.total_batches; }

  /// Resets the queue to a checkpoint: the first `batches` are considered
  /// completed, everything else (including outstanding and re-queued work)
  /// is fresh again. Used when model parameters roll back to a checkpoint:
  /// data consumption must roll back with them to stay consistent.
  void FastForwardTo(uint64_t batches);

  /// Captures a consistent cut of data consumption for checkpointing.
  /// `in_flight` carries the committed prefix length of each outstanding
  /// shard (per the trainer's registry); batches beyond those prefixes —
  /// and every re-queued range — land in `pending` so they are re-served
  /// after a restore. The snapshot satisfies
  ///   completed + sum(pending) + (total - cursor) == total.
  ShardQueueSnapshot SnapshotState(
      const std::vector<ShardProgress>& in_flight = {}) const;

  /// Resets the queue to a snapshot taken by SnapshotState. Outstanding
  /// shards are dropped (their unprocessed suffixes are in `pending`);
  /// pending ranges get fresh indices, so reports naming pre-restore
  /// indices return kNotFound instead of corrupting the audit. The index
  /// allocator is never rewound.
  void RestoreState(const ShardQueueSnapshot& snapshot);

  /// Audit: asserts internal bookkeeping is consistent (used by tests).
  Status CheckInvariants() const;

 private:
  StatusOr<DataShard> NextShardLocked(uint64_t max_batches);
  uint64_t OutstandingBatchesLocked() const;
  bool ServableLocked() const;

  ShardQueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // signaled when data or terminal state appears
  uint64_t cursor_ = 0;          // first fresh batch not yet handed out
  uint64_t next_index_ = 0;      // shard index allocator
  uint64_t completed_batches_ = 0;
  std::deque<DataShard> requeued_;
  /// Outstanding shards (at most one per active worker, so a handful).
  /// A flat vector with linear find + swap-pop beats a map here and — the
  /// real point — reuses its capacity, so the steady-state dispatch path
  /// stops allocating a map node per served shard.
  std::vector<DataShard> outstanding_;
  /// Mirror maintained only under options_.legacy_index (cost model).
  std::map<uint64_t, DataShard> legacy_outstanding_;
};

}  // namespace dlrover

#endif  // DLROVER_ELASTIC_SHARD_QUEUE_H_
