#ifndef DLROVER_ELASTIC_CHECKPOINT_H_
#define DLROVER_ELASTIC_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.h"

namespace dlrover {

/// Abstract checkpoint tier. Implementations model the time it takes to
/// persist / restore a model of a given size; the simulation charges these
/// durations to the job's critical path.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  /// Time to persist `bytes` of model state.
  virtual Duration WriteTime(Bytes bytes) const = 0;
  /// Time to restore `bytes` of model state.
  virtual Duration ReadTime(Bytes bytes) const = 0;
  virtual std::string name() const = 0;
};

/// Remote disk storage (RDS): shared service with limited per-job bandwidth
/// and a fixed coordination overhead. Paper: checkpointing a job to RDS
/// takes 5-10 minutes.
struct RdsStoreOptions {
  Bandwidth write_bandwidth = MiBps(64);
  Bandwidth read_bandwidth = MiBps(96);
  Duration fixed_overhead = Seconds(45);
};

class RdsStore : public CheckpointStore {
 public:
  explicit RdsStore(const RdsStoreOptions& options = {}) : options_(options) {}
  Duration WriteTime(Bytes bytes) const override {
    return options_.fixed_overhead + bytes / options_.write_bandwidth;
  }
  Duration ReadTime(Bytes bytes) const override {
    return options_.fixed_overhead + bytes / options_.read_bandwidth;
  }
  std::string name() const override { return "rds"; }

 private:
  RdsStoreOptions options_;
};

/// Flash-checkpoint tier (paper Section 5.2): a distributed in-memory cache.
/// Writes are near-instant (<1s for a 20GB model) and data is flushed to RDS
/// asynchronously off the critical path. `flushed_bytes` tracks the async
/// persistence so tests can assert it happens.
struct CacheStoreOptions {
  Bandwidth bandwidth = GiBps(24);
  Duration fixed_overhead = Seconds(0.2);
  /// When new and old pods share a physical node, loads skip the network.
  double same_node_speedup = 4.0;
};

class CacheStore : public CheckpointStore {
 public:
  explicit CacheStore(const CacheStoreOptions& options = {})
      : options_(options) {}
  Duration WriteTime(Bytes bytes) const override {
    return options_.fixed_overhead + bytes / options_.bandwidth;
  }
  Duration ReadTime(Bytes bytes) const override {
    return options_.fixed_overhead + bytes / options_.bandwidth;
  }
  /// Read when producer and consumer are co-located on one node.
  Duration LocalReadTime(Bytes bytes) const {
    return options_.fixed_overhead +
           bytes / (options_.bandwidth * options_.same_node_speedup);
  }
  std::string name() const override { return "flash-cache"; }

  /// Records an asynchronous flush of cached state to RDS. Does not block
  /// the caller; the simulation can query total flushed bytes.
  void AsyncFlushToRds(Bytes bytes) { flushed_bytes_ += bytes; }
  Bytes flushed_bytes() const { return flushed_bytes_; }

 private:
  CacheStoreOptions options_;
  Bytes flushed_bytes_ = 0;
};

/// A recorded checkpoint: what was saved, when, where.
struct CheckpointRecord {
  SimTime saved_at = 0.0;
  Bytes bytes = 0.0;
  uint64_t trained_batches = 0;  // training progress captured by the ckpt
  std::string store;
};

}  // namespace dlrover

#endif  // DLROVER_ELASTIC_CHECKPOINT_H_
