#ifndef DLROVER_ELASTIC_OOM_PREDICTOR_H_
#define DLROVER_ELASTIC_OOM_PREDICTOR_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "common/units.h"

namespace dlrover {

struct OomPredictorOptions {
  /// Number of recent (time, memory) samples used for the trend fit.
  size_t window = 24;
  /// Safety headroom: predict OOM when projected usage exceeds
  /// limit * headroom_fraction.
  double headroom_fraction = 0.9;
  /// Recommended new limit = projected peak * overprovision_factor.
  double overprovision_factor = 1.15;
  /// Minimum samples before predictions are made.
  size_t min_samples = 4;
};

/// Predicts PS out-of-memory events (paper Section 5.3). Embedding-table
/// memory grows roughly linearly with consumed samples (Δφ_cats ∝ Ψ_thp·Δt),
/// so a windowed linear fit of memory-vs-time extrapolated to the job's
/// estimated completion time tells us whether the PS will blow its limit
/// before the job finishes — early enough to pre-scale its memory.
class OomPredictor {
 public:
  explicit OomPredictor(const OomPredictorOptions& options = {})
      : options_(options) {}

  /// Feeds one memory-usage observation for the tracked PS.
  void Observe(SimTime now, Bytes used);

  /// Linear-trend slope in bytes/second over the window (0 if unknown).
  double SlopeBytesPerSec() const;

  /// Projected memory usage at `future_time` (clamped to be >= last sample).
  Bytes ProjectAt(SimTime future_time) const;

  /// Returns the recommended new memory limit if usage is projected to
  /// exceed `limit` (x headroom) before `completion_time`; nullopt when the
  /// current limit is safe.
  std::optional<Bytes> RecommendLimit(Bytes current_limit,
                                      SimTime completion_time) const;

  size_t sample_count() const { return samples_.size(); }

 private:
  struct Sample {
    SimTime t;
    Bytes mem;
  };
  OomPredictorOptions options_;
  std::deque<Sample> samples_;
};

}  // namespace dlrover

#endif  // DLROVER_ELASTIC_OOM_PREDICTOR_H_
