#ifndef DLROVER_ELASTIC_OOM_PREDICTOR_H_
#define DLROVER_ELASTIC_OOM_PREDICTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.h"

namespace dlrover {

struct OomPredictorOptions {
  /// Number of recent (time, memory) samples used for the trend fit.
  size_t window = 24;
  /// Safety headroom: predict OOM when projected usage exceeds
  /// limit * headroom_fraction.
  double headroom_fraction = 0.9;
  /// Recommended new limit = projected peak * overprovision_factor.
  double overprovision_factor = 1.15;
  /// Minimum samples before predictions are made.
  size_t min_samples = 4;
};

/// Predicts PS out-of-memory events (paper Section 5.3). Embedding-table
/// memory grows roughly linearly with consumed samples (Δφ_cats ∝ Ψ_thp·Δt),
/// so a windowed linear fit of memory-vs-time extrapolated to the job's
/// estimated completion time tells us whether the PS will blow its limit
/// before the job finishes — early enough to pre-scale its memory.
///
/// Samples live in a fixed-capacity ring buffer: once the window is warm,
/// Observe overwrites the oldest slot in place, so the steady-state
/// profile-tick path performs no heap allocation.
class OomPredictor {
 public:
  explicit OomPredictor(const OomPredictorOptions& options = {})
      : options_(options) {}

  /// Feeds one memory-usage observation for the tracked PS.
  void Observe(SimTime now, Bytes used);

  /// Linear-trend slope in bytes/second over the window (0 if unknown).
  double SlopeBytesPerSec() const;

  /// Projected memory usage at `future_time` (clamped to be >= last sample).
  Bytes ProjectAt(SimTime future_time) const;

  /// Returns the recommended new memory limit if usage is projected to
  /// exceed `limit` (x headroom) before `completion_time`; nullopt when the
  /// current limit is safe.
  std::optional<Bytes> RecommendLimit(Bytes current_limit,
                                      SimTime completion_time) const;

  size_t sample_count() const { return ring_.size(); }

 private:
  struct Sample {
    SimTime t;
    Bytes mem;
  };

  /// i-th oldest retained sample (0 = oldest). Iterating i ascending walks
  /// the window chronologically, matching the old deque front-to-back order
  /// (the least-squares sums depend on it bit-for-bit).
  const Sample& At(size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  OomPredictorOptions options_;
  std::vector<Sample> ring_;
  size_t head_ = 0;  // index of the oldest sample once the ring is full
};

}  // namespace dlrover

#endif  // DLROVER_ELASTIC_OOM_PREDICTOR_H_
