#ifndef DLROVER_ELASTIC_HEARTBEAT_H_
#define DLROVER_ELASTIC_HEARTBEAT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/units.h"

namespace dlrover {

/// Per-member view the monitor keeps from heartbeat packets.
struct MemberHealth {
  SimTime last_heartbeat = 0.0;
  uint64_t progress_offset = 0;  // samples (or batches) processed
  SimTime first_heartbeat = 0.0;
  bool flagged_straggler = false;
};

struct HeartbeatMonitorOptions {
  /// A member is declared failed after this silence (paper: job master
  /// treats missing heartbeats for "a reasonably long time" as failure).
  Duration failure_timeout = Minutes(2);
  /// A member is a straggler when its progress rate falls below this
  /// fraction of the group median rate.
  double straggler_rate_fraction = 0.5;
  /// Minimum observation window before straggler judgments.
  Duration min_observation = Seconds(60);
};

/// Tracks heartbeat packets carrying progress offsets (paper Section 5.1)
/// and classifies members as failed (silence) or stragglers (progress rate
/// far below peers). Pure bookkeeping: the owner drives time by calling
/// Check(now) and reacts to the returned verdicts.
class HeartbeatMonitor {
 public:
  explicit HeartbeatMonitor(const HeartbeatMonitorOptions& options)
      : options_(options) {}

  /// Registers a member (worker or PS). Progress starts at zero. Clears any
  /// fence on the id: an explicit re-add is a new incarnation.
  void AddMember(uint64_t member_id, SimTime now);
  /// Removes a member (scale-down or confirmed failure).
  void RemoveMember(uint64_t member_id);
  /// Removes a member AND remembers the id as fenced: late heartbeat packets
  /// still in flight for a worker the master already gave up on must not
  /// auto-register a ghost member. Only AddMember lifts the fence.
  void FenceMember(uint64_t member_id);
  bool IsFenced(uint64_t member_id) const {
    return fenced_.count(member_id) != 0;
  }

  /// Records a heartbeat packet with the member's cumulative progress.
  /// Delivery hardening for a lossy control plane: packets with a timestamp
  /// older than the member's last accepted one are ignored (out-of-order
  /// delivery must not rewind liveness), progress only ever moves forward
  /// (duplicates are harmless), and packets for fenced ids are dropped.
  void Heartbeat(uint64_t member_id, SimTime now, uint64_t progress_offset);

  /// Members silent beyond the failure timeout.
  std::vector<uint64_t> DetectFailures(SimTime now) const;

  /// Members whose progress rate is far below the group's median rate.
  /// Already-flagged members are not re-reported unless `include_flagged`.
  std::vector<uint64_t> DetectStragglers(SimTime now,
                                         bool include_flagged = false);

  /// Progress rate (units per second) of one member; 0 if unknown.
  double ProgressRate(uint64_t member_id, SimTime now) const;

  size_t member_count() const { return members_.size(); }
  const std::map<uint64_t, MemberHealth>& members() const { return members_; }

  /// Out-of-order packets discarded by the monotonic-timestamp guard.
  uint64_t stale_heartbeats_ignored() const {
    return stale_heartbeats_ignored_;
  }
  /// Packets for fenced (already given-up-on) members discarded.
  uint64_t fenced_heartbeats_ignored() const {
    return fenced_heartbeats_ignored_;
  }

 private:
  HeartbeatMonitorOptions options_;
  std::map<uint64_t, MemberHealth> members_;
  std::set<uint64_t> fenced_;
  uint64_t stale_heartbeats_ignored_ = 0;
  uint64_t fenced_heartbeats_ignored_ = 0;
};

}  // namespace dlrover

#endif  // DLROVER_ELASTIC_HEARTBEAT_H_
