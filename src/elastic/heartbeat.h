#ifndef DLROVER_ELASTIC_HEARTBEAT_H_
#define DLROVER_ELASTIC_HEARTBEAT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/units.h"

namespace dlrover {

/// Per-member view the monitor keeps from heartbeat packets.
struct MemberHealth {
  SimTime last_heartbeat = 0.0;
  uint64_t progress_offset = 0;  // samples (or batches) processed
  SimTime first_heartbeat = 0.0;
  bool flagged_straggler = false;
};

struct HeartbeatMonitorOptions {
  /// A member is declared failed after this silence (paper: job master
  /// treats missing heartbeats for "a reasonably long time" as failure).
  Duration failure_timeout = Minutes(2);
  /// A member is a straggler when its progress rate falls below this
  /// fraction of the group median rate.
  double straggler_rate_fraction = 0.5;
  /// Minimum observation window before straggler judgments.
  Duration min_observation = Seconds(60);
};

/// Tracks heartbeat packets carrying progress offsets (paper Section 5.1)
/// and classifies members as failed (silence) or stragglers (progress rate
/// far below peers). Pure bookkeeping: the owner drives time by calling
/// Check(now) and reacts to the returned verdicts.
class HeartbeatMonitor {
 public:
  explicit HeartbeatMonitor(const HeartbeatMonitorOptions& options)
      : options_(options) {}

  /// Registers a member (worker or PS). Progress starts at zero.
  void AddMember(uint64_t member_id, SimTime now);
  /// Removes a member (scale-down or confirmed failure).
  void RemoveMember(uint64_t member_id);

  /// Records a heartbeat packet with the member's cumulative progress.
  void Heartbeat(uint64_t member_id, SimTime now, uint64_t progress_offset);

  /// Members silent beyond the failure timeout.
  std::vector<uint64_t> DetectFailures(SimTime now) const;

  /// Members whose progress rate is far below the group's median rate.
  /// Already-flagged members are not re-reported unless `include_flagged`.
  std::vector<uint64_t> DetectStragglers(SimTime now,
                                         bool include_flagged = false);

  /// Progress rate (units per second) of one member; 0 if unknown.
  double ProgressRate(uint64_t member_id, SimTime now) const;

  size_t member_count() const { return members_.size(); }
  const std::map<uint64_t, MemberHealth>& members() const { return members_; }

 private:
  HeartbeatMonitorOptions options_;
  std::map<uint64_t, MemberHealth> members_;
};

}  // namespace dlrover

#endif  // DLROVER_ELASTIC_HEARTBEAT_H_
