#include "elastic/heartbeat.h"

#include <algorithm>

namespace dlrover {

void HeartbeatMonitor::AddMember(uint64_t member_id, SimTime now) {
  MemberHealth h;
  h.last_heartbeat = now;
  h.first_heartbeat = now;
  members_[member_id] = h;
  fenced_.erase(member_id);
}

void HeartbeatMonitor::RemoveMember(uint64_t member_id) {
  members_.erase(member_id);
}

void HeartbeatMonitor::FenceMember(uint64_t member_id) {
  members_.erase(member_id);
  fenced_.insert(member_id);
}

void HeartbeatMonitor::Heartbeat(uint64_t member_id, SimTime now,
                                 uint64_t progress_offset) {
  if (fenced_.count(member_id) != 0) {
    ++fenced_heartbeats_ignored_;
    return;
  }
  auto it = members_.find(member_id);
  if (it == members_.end()) {
    AddMember(member_id, now);
    it = members_.find(member_id);
  }
  if (now < it->second.last_heartbeat) {
    // Out-of-order delivery: an older packet carries no new liveness
    // evidence and must not rewind the silence clock.
    ++stale_heartbeats_ignored_;
    it->second.progress_offset =
        std::max(it->second.progress_offset, progress_offset);
    return;
  }
  it->second.last_heartbeat = now;
  it->second.progress_offset =
      std::max(it->second.progress_offset, progress_offset);
}

std::vector<uint64_t> HeartbeatMonitor::DetectFailures(SimTime now) const {
  std::vector<uint64_t> failed;
  for (const auto& [id, h] : members_) {
    if (now - h.last_heartbeat > options_.failure_timeout) {
      failed.push_back(id);
    }
  }
  return failed;
}

double HeartbeatMonitor::ProgressRate(uint64_t member_id, SimTime now) const {
  auto it = members_.find(member_id);
  if (it == members_.end()) return 0.0;
  const MemberHealth& h = it->second;
  const double window = now - h.first_heartbeat;
  if (window <= 0.0) return 0.0;
  return static_cast<double>(h.progress_offset) / window;
}

std::vector<uint64_t> HeartbeatMonitor::DetectStragglers(
    SimTime now, bool include_flagged) {
  std::vector<uint64_t> stragglers;
  if (members_.size() < 3) return stragglers;  // need peers to compare

  std::vector<double> rates;
  rates.reserve(members_.size());
  for (const auto& [id, h] : members_) {
    if (now - h.first_heartbeat < options_.min_observation) return stragglers;
    rates.push_back(ProgressRate(id, now));
  }
  std::vector<double> sorted = rates;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  if (median <= 0.0) return stragglers;

  for (auto& [id, h] : members_) {
    if (h.flagged_straggler && !include_flagged) continue;
    const double rate = ProgressRate(id, now);
    if (rate < options_.straggler_rate_fraction * median) {
      h.flagged_straggler = true;
      stragglers.push_back(id);
    }
  }
  return stragglers;
}

}  // namespace dlrover
