#include "elastic/oom_predictor.h"

#include <algorithm>

namespace dlrover {

void OomPredictor::Observe(SimTime now, Bytes used) {
  const size_t cap = std::max<size_t>(1, options_.window);
  if (ring_.size() < cap) {
    // Warm-up: grow until the window is full; head_ stays at 0 so insertion
    // order is chronological order.
    ring_.push_back({now, used});
    return;
  }
  // Full: overwrite the oldest slot in place — no allocation.
  ring_[head_] = {now, used};
  head_ = (head_ + 1) % cap;
}

double OomPredictor::SlopeBytesPerSec() const {
  if (ring_.size() < options_.min_samples) return 0.0;
  // Ordinary least squares slope of mem over time.
  double mean_t = 0.0;
  double mean_m = 0.0;
  const size_t n_samples = ring_.size();
  for (size_t i = 0; i < n_samples; ++i) {
    const Sample& s = At(i);
    mean_t += s.t;
    mean_m += s.mem;
  }
  const double n = static_cast<double>(n_samples);
  mean_t /= n;
  mean_m /= n;
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < n_samples; ++i) {
    const Sample& s = At(i);
    num += (s.t - mean_t) * (s.mem - mean_m);
    den += (s.t - mean_t) * (s.t - mean_t);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

Bytes OomPredictor::ProjectAt(SimTime future_time) const {
  if (ring_.empty()) return 0.0;
  const Sample& last = At(ring_.size() - 1);
  const double slope = std::max(0.0, SlopeBytesPerSec());
  const double horizon = std::max(0.0, future_time - last.t);
  return last.mem + slope * horizon;
}

std::optional<Bytes> OomPredictor::RecommendLimit(
    Bytes current_limit, SimTime completion_time) const {
  if (ring_.size() < options_.min_samples) return std::nullopt;
  const Bytes projected = ProjectAt(completion_time);
  if (projected <= current_limit * options_.headroom_fraction) {
    return std::nullopt;
  }
  return projected * options_.overprovision_factor;
}

}  // namespace dlrover
