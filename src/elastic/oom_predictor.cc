#include "elastic/oom_predictor.h"

#include <algorithm>

namespace dlrover {

void OomPredictor::Observe(SimTime now, Bytes used) {
  samples_.push_back({now, used});
  while (samples_.size() > options_.window) samples_.pop_front();
}

double OomPredictor::SlopeBytesPerSec() const {
  if (samples_.size() < options_.min_samples) return 0.0;
  // Ordinary least squares slope of mem over time.
  double mean_t = 0.0;
  double mean_m = 0.0;
  for (const Sample& s : samples_) {
    mean_t += s.t;
    mean_m += s.mem;
  }
  const double n = static_cast<double>(samples_.size());
  mean_t /= n;
  mean_m /= n;
  double num = 0.0;
  double den = 0.0;
  for (const Sample& s : samples_) {
    num += (s.t - mean_t) * (s.mem - mean_m);
    den += (s.t - mean_t) * (s.t - mean_t);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

Bytes OomPredictor::ProjectAt(SimTime future_time) const {
  if (samples_.empty()) return 0.0;
  const Sample& last = samples_.back();
  const double slope = std::max(0.0, SlopeBytesPerSec());
  const double horizon = std::max(0.0, future_time - last.t);
  return last.mem + slope * horizon;
}

std::optional<Bytes> OomPredictor::RecommendLimit(
    Bytes current_limit, SimTime completion_time) const {
  if (samples_.size() < options_.min_samples) return std::nullopt;
  const Bytes projected = ProjectAt(completion_time);
  if (projected <= current_limit * options_.headroom_fraction) {
    return std::nullopt;
  }
  return projected * options_.overprovision_factor;
}

}  // namespace dlrover
