#include "elastic/chaos.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"

namespace dlrover {

const char* ChaosFaultKindName(ChaosFaultKind kind) {
  switch (kind) {
    case ChaosFaultKind::kCrashBeforePush:
      return "crash_before_push";
    case ChaosFaultKind::kCrashAfterPush:
      return "crash_after_push";
    case ChaosFaultKind::kStallWorker:
      return "stall_worker";
    case ChaosFaultKind::kLoseShardReport:
      return "lose_shard_report";
    case ChaosFaultKind::kFailCheckpointWrite:
      return "fail_checkpoint_write";
    case ChaosFaultKind::kPsFailure:
      return "ps_failure";
    case ChaosFaultKind::kTornCheckpointWrite:
      return "torn_checkpoint_write";
  }
  return "unknown";
}

ChaosInjector::ChaosInjector(std::vector<ChaosFault> schedule)
    : schedule_(std::move(schedule)) {
  std::sort(schedule_.begin(), schedule_.end(),
            [](const ChaosFault& a, const ChaosFault& b) {
              if (a.at_batches != b.at_batches) {
                return a.at_batches < b.at_batches;
              }
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  for (const ChaosFault& fault : schedule_) {
    triggers_[static_cast<int>(fault.kind)].push_back(fault.at_batches);
  }
}

ChaosInjector ChaosInjector::FromSeed(const ChaosScheduleOptions& options) {
  Rng rng(options.seed ^ 0xc8a05ull);
  const double begin =
      std::max(0.0, std::min(options.window_begin, options.window_end));
  const double end = std::min(1.0, std::max(options.window_end, begin));
  const double span = static_cast<double>(options.total_batches);
  auto draw = [&](int count, ChaosFaultKind kind,
                  std::vector<ChaosFault>* out) {
    for (int i = 0; i < count; ++i) {
      const double u = rng.Uniform(begin, end);
      ChaosFault fault;
      fault.at_batches = static_cast<uint64_t>(u * span);
      fault.kind = kind;
      out->push_back(fault);
    }
  };
  std::vector<ChaosFault> schedule;
  draw(options.crashes_before_push, ChaosFaultKind::kCrashBeforePush,
       &schedule);
  draw(options.crashes_after_push, ChaosFaultKind::kCrashAfterPush, &schedule);
  draw(options.stalls, ChaosFaultKind::kStallWorker, &schedule);
  draw(options.lost_reports, ChaosFaultKind::kLoseShardReport, &schedule);
  draw(options.failed_checkpoint_writes, ChaosFaultKind::kFailCheckpointWrite,
       &schedule);
  draw(options.ps_failures, ChaosFaultKind::kPsFailure, &schedule);
  // Drawn last (and default 0): older seeds keep their exact schedules.
  draw(options.torn_checkpoint_writes, ChaosFaultKind::kTornCheckpointWrite,
       &schedule);
  return ChaosInjector(std::move(schedule));
}

bool ChaosInjector::Take(ChaosFaultKind kind, uint64_t committed_batches) {
  const int k = static_cast<int>(kind);
  std::lock_guard<std::mutex> lock(mu_);
  if (cursor_[k] >= triggers_[k].size()) return false;
  const uint64_t trigger = triggers_[k][cursor_[k]];
  if (trigger > committed_batches) return false;
  ++cursor_[k];
  ChaosFiredRecord record;
  record.fault.at_batches = trigger;
  record.fault.kind = kind;
  record.fired_at_batches = committed_batches;
  fired_.push_back(record);
  return true;
}

bool ChaosInjector::Due(ChaosFaultKind kind, uint64_t committed_batches) const {
  const int k = static_cast<int>(kind);
  std::lock_guard<std::mutex> lock(mu_);
  return cursor_[k] < triggers_[k].size() &&
         triggers_[k][cursor_[k]] <= committed_batches;
}

std::vector<ChaosFiredRecord> ChaosInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

size_t ChaosInjector::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t left = 0;
  for (int k = 0; k < kNumKinds; ++k) left += triggers_[k].size() - cursor_[k];
  return left;
}

std::string ChaosInjector::Describe() const {
  std::string out;
  for (const ChaosFault& fault : schedule_) {
    if (!out.empty()) out += " ";
    out += ChaosFaultKindName(fault.kind);
    out += "@";
    out += std::to_string(fault.at_batches);
  }
  return out;
}

}  // namespace dlrover
