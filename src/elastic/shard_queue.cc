#include "elastic/shard_queue.h"

#include <algorithm>
#include <chrono>

namespace dlrover {

ShardQueue::ShardQueue(const ShardQueueOptions& options) : options_(options) {}

bool ShardQueue::ServableLocked() const {
  return !requeued_.empty() || cursor_ < options_.total_batches;
}

StatusOr<DataShard> ShardQueue::NextShardLocked(uint64_t max_batches) {
  uint64_t want = max_batches == 0 ? options_.default_shard_batches
                                   : std::max(max_batches,
                                              options_.min_shard_batches);

  // Serve re-queued data first so failed workers' batches are not starved.
  if (!requeued_.empty()) {
    DataShard shard = requeued_.front();
    requeued_.pop_front();
    if (shard.batches() > want) {
      // Split: hand out a prefix, keep the suffix queued.
      DataShard rest;
      rest.index = next_index_++;
      rest.start_batch = shard.start_batch + want;
      rest.end_batch = shard.end_batch;
      requeued_.push_front(rest);
      shard.end_batch = shard.start_batch + want;
    }
    // Fresh index per dispatch: a late report from the worker that failed
    // this range earlier must not be able to complete the re-served copy.
    shard.index = next_index_++;
    outstanding_.push_back(shard);
    if (options_.legacy_index) legacy_outstanding_.emplace(shard.index, shard);
    return shard;
  }

  if (cursor_ >= options_.total_batches) {
    return NotFoundError("shard queue exhausted");
  }
  DataShard shard;
  shard.index = next_index_++;
  shard.start_batch = cursor_;
  shard.end_batch = std::min(cursor_ + want, options_.total_batches);
  cursor_ = shard.end_batch;
  outstanding_.push_back(shard);
  if (options_.legacy_index) legacy_outstanding_.emplace(shard.index, shard);
  return shard;
}

StatusOr<DataShard> ShardQueue::NextShard(uint64_t max_batches) {
  std::lock_guard<std::mutex> lock(mu_);
  return NextShardLocked(max_batches);
}

StatusOr<DataShard> ShardQueue::WaitNextShard(uint64_t max_batches) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (ServableLocked()) return NextShardLocked(max_batches);
    if (outstanding_.empty()) {
      // Nothing queued and nobody holds work that could be re-queued.
      return NotFoundError("shard queue exhausted");
    }
    cv_.wait(lock);
  }
}

StatusOr<DataShard> ShardQueue::WaitNextShardFor(double timeout_seconds,
                                                 uint64_t max_batches) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0, timeout_seconds)));
  for (;;) {
    if (ServableLocked()) return NextShardLocked(max_batches);
    if (outstanding_.empty()) {
      return NotFoundError("shard queue exhausted");
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Re-check once: the wakeup may have raced with the deadline.
      if (ServableLocked()) return NextShardLocked(max_batches);
      if (outstanding_.empty()) return NotFoundError("shard queue exhausted");
      return DeadlineExceededError("timed out waiting for a shard");
    }
  }
}

Status ShardQueue::ReportCompleted(const DataShard& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.legacy_index) legacy_outstanding_.erase(shard.index);
  auto it = std::find_if(
      outstanding_.begin(), outstanding_.end(),
      [&](const DataShard& s) { return s.index == shard.index; });
  if (it == outstanding_.end()) {
    return NotFoundError("completion for unknown shard");
  }
  completed_batches_ += it->batches();
  *it = outstanding_.back();
  outstanding_.pop_back();
  // Wake blocked workers: either terminal (all done) or, if this was the
  // last outstanding shard with data still queued, nothing changes for
  // them — notify_all keeps the logic simple and exits are cheap.
  cv_.notify_all();
  return Status::OK();
}

Status ShardQueue::ReportFailed(const DataShard& shard,
                                uint64_t processed_batches) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.legacy_index) legacy_outstanding_.erase(shard.index);
  auto it = std::find_if(
      outstanding_.begin(), outstanding_.end(),
      [&](const DataShard& s) { return s.index == shard.index; });
  if (it == outstanding_.end()) {
    return NotFoundError("failure report for unknown shard");
  }
  DataShard owned = *it;
  *it = outstanding_.back();
  outstanding_.pop_back();
  processed_batches = std::min(processed_batches, owned.batches());
  completed_batches_ += processed_batches;
  if (processed_batches < owned.batches()) {
    DataShard rest;
    rest.index = next_index_++;
    rest.start_batch = owned.start_batch + processed_batches;
    rest.end_batch = owned.end_batch;
    requeued_.push_back(rest);
  }
  cv_.notify_all();
  return Status::OK();
}

uint64_t ShardQueue::completed_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_batches_;
}

uint64_t ShardQueue::OutstandingBatchesLocked() const {
  uint64_t total = 0;
  for (const DataShard& shard : outstanding_) total += shard.batches();
  return total;
}

uint64_t ShardQueue::outstanding_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return OutstandingBatchesLocked();
}

bool ShardQueue::AllDone() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_batches_ == options_.total_batches;
}

bool ShardQueue::Exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requeued_.empty() && cursor_ >= options_.total_batches;
}

void ShardQueue::FastForwardTo(uint64_t batches) {
  std::lock_guard<std::mutex> lock(mu_);
  batches = std::min(batches, options_.total_batches);
  cursor_ = batches;
  completed_batches_ = batches;
  requeued_.clear();
  outstanding_.clear();
  legacy_outstanding_.clear();
  cv_.notify_all();
}

ShardQueueSnapshot ShardQueue::SnapshotState(
    const std::vector<ShardProgress>& in_flight) const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardQueueSnapshot snap;
  snap.cursor = cursor_;
  snap.completed_batches = completed_batches_;
  snap.pending.assign(requeued_.begin(), requeued_.end());
  for (const DataShard& shard : outstanding_) {
    uint64_t processed = 0;
    for (const ShardProgress& p : in_flight) {
      if (p.shard_index == shard.index) {
        processed = std::min(p.processed_batches, shard.batches());
        break;
      }
    }
    snap.completed_batches += processed;
    if (processed < shard.batches()) {
      DataShard rest = shard;
      rest.start_batch += processed;
      snap.pending.push_back(rest);
    }
  }
  return snap;
}

void ShardQueue::RestoreState(const ShardQueueSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  cursor_ = std::min(snapshot.cursor, options_.total_batches);
  completed_batches_ = snapshot.completed_batches;
  requeued_.clear();
  outstanding_.clear();
  legacy_outstanding_.clear();
  for (const DataShard& range : snapshot.pending) {
    if (range.end_batch <= range.start_batch) continue;
    DataShard shard = range;
    shard.index = next_index_++;
    requeued_.push_back(shard);
  }
  cv_.notify_all();
}

Status ShardQueue::CheckInvariants() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t requeued = 0;
  for (const DataShard& s : requeued_) {
    if (s.end_batch <= s.start_batch) {
      return InternalError("empty shard in requeue buffer");
    }
    requeued += s.batches();
  }
  const uint64_t accounted =
      completed_batches_ + OutstandingBatchesLocked() + requeued +
      (options_.total_batches - cursor_);
  if (accounted != options_.total_batches) {
    return InternalError("shard accounting leak: batches lost or duplicated");
  }
  return Status::OK();
}

}  // namespace dlrover
