#ifndef DLROVER_ELASTIC_CHAOS_H_
#define DLROVER_ELASTIC_CHAOS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dlrover {

/// Fault kinds the threaded trainer knows how to suffer. Each maps to a
/// specific hook in the runtime:
///   kCrashBeforePush  — worker dies after computing a batch, before its
///                       gradients reach the PS (the batch must be redone);
///   kCrashAfterPush   — worker dies right after committing a batch (the
///                       batch must NOT be redone);
///   kStallWorker      — worker goes silent without dying (heartbeat
///                       timeout is the only way to notice);
///   kLoseShardReport  — a finished shard's completion report is dropped
///                       (supervisor must reap it or the queue never
///                       drains);
///   kFailCheckpointWrite — the next checkpoint write is corrupted (a
///                       payload bit flips after checksumming; vault must
///                       fall back to an older generation on restore);
///   kPsFailure        — parameter state is lost; the trainer restores
///                       from the latest valid checkpoint;
///   kTornCheckpointWrite — the next checkpoint write is cut short
///                       mid-stream (payload truncated after checksumming
///                       — the classic torn write, distinct from the
///                       bit-flip corruption above; the vault must reject
///                       the short read and fall back).
enum class ChaosFaultKind : int {
  kCrashBeforePush = 0,
  kCrashAfterPush = 1,
  kStallWorker = 2,
  kLoseShardReport = 3,
  kFailCheckpointWrite = 4,
  kPsFailure = 5,
  kTornCheckpointWrite = 6,
};

const char* ChaosFaultKindName(ChaosFaultKind kind);

/// One scheduled fault: fires when the trainer's committed-batch counter
/// reaches `at_batches`. Keying on committed progress (not wall-clock)
/// makes schedules reproducible across machines and run speeds.
struct ChaosFault {
  uint64_t at_batches = 0;
  ChaosFaultKind kind = ChaosFaultKind::kCrashBeforePush;
};

/// Audit record of a fault that actually fired.
struct ChaosFiredRecord {
  ChaosFault fault;
  /// Committed count observed at the hook that consumed the fault (>=
  /// fault.at_batches; the overshoot measures hook polling granularity).
  uint64_t fired_at_batches = 0;
};

/// Knobs for the seeded schedule generator: how many faults of each kind,
/// spread over which fraction of the run.
struct ChaosScheduleOptions {
  uint64_t seed = 1;
  uint64_t total_batches = 0;
  int crashes_before_push = 1;
  int crashes_after_push = 1;
  int stalls = 1;
  int lost_reports = 1;
  int failed_checkpoint_writes = 1;
  int ps_failures = 1;
  /// Defaults to 0 (unlike the kinds above) so schedules generated from
  /// pre-existing seeds keep their exact RNG sequence; its draws also come
  /// last in FromSeed for the same reason.
  int torn_checkpoint_writes = 0;
  /// Faults land uniformly in [window_begin, window_end) * total_batches:
  /// after warmup (so there is progress to lose) and before the tail (so
  /// recovery has batches left to prove itself on).
  double window_begin = 0.05;
  double window_end = 0.85;
};

/// Deterministic chaos injector. The schedule is fixed up front — either
/// handed in explicitly or generated from a seed — and every fault fires
/// exactly once, when a runtime hook of the matching kind observes the
/// committed-batch counter at or past the fault's trigger. Same seed, same
/// options => same schedule, always; the fired log records what actually
/// happened for post-run audit.
///
/// Thread-safe: hooks call Take() concurrently from worker and supervisor
/// threads.
class ChaosInjector {
 public:
  ChaosInjector() = default;
  explicit ChaosInjector(std::vector<ChaosFault> schedule);

  /// Generates a seeded schedule per `options`.
  static ChaosInjector FromSeed(const ChaosScheduleOptions& options);

  /// Consumes the next due fault of `kind`: returns true iff a scheduled
  /// fault of that kind has trigger <= committed_batches and has not fired
  /// yet. Faults of one kind fire in trigger order, independently of other
  /// kinds (each runtime hook polls only the kinds it implements).
  bool Take(ChaosFaultKind kind, uint64_t committed_batches);

  /// True if any fault of `kind` is still pending at or before
  /// `committed_batches` (without consuming it).
  bool Due(ChaosFaultKind kind, uint64_t committed_batches) const;

  /// The full schedule, sorted by (trigger, kind). Stable across the run.
  const std::vector<ChaosFault>& schedule() const { return schedule_; }

  /// Faults fired so far, in firing order. Take a copy while threads run.
  std::vector<ChaosFiredRecord> fired() const;

  size_t remaining() const;

  /// Human-readable "kind@trigger" schedule summary for logs/benches.
  std::string Describe() const;

 private:
  static constexpr int kNumKinds = 7;

  std::vector<ChaosFault> schedule_;
  mutable std::mutex mu_;
  /// Per-kind sorted trigger lists + firing cursors.
  std::vector<uint64_t> triggers_[kNumKinds];
  size_t cursor_[kNumKinds] = {};
  std::vector<ChaosFiredRecord> fired_;
};

}  // namespace dlrover

#endif  // DLROVER_ELASTIC_CHAOS_H_
