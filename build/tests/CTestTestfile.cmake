# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/elastic_test[1]_include.cmake")
include("/root/repo/build/tests/training_job_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/nsga2_test[1]_include.cmake")
include("/root/repo/build/tests/brain_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/mini_dlrm_test[1]_include.cmake")
include("/root/repo/build/tests/async_trainer_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/iteration_model_test[1]_include.cmake")
include("/root/repo/build/tests/criteo_synth_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_property_test[1]_include.cmake")
include("/root/repo/build/tests/job_master_test[1]_include.cmake")
