# Empty compiler generated dependencies file for mini_dlrm_test.
# This may be replaced when dependencies are built.
