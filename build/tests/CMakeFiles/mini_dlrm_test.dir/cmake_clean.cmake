file(REMOVE_RECURSE
  "CMakeFiles/mini_dlrm_test.dir/mini_dlrm_test.cc.o"
  "CMakeFiles/mini_dlrm_test.dir/mini_dlrm_test.cc.o.d"
  "mini_dlrm_test"
  "mini_dlrm_test.pdb"
  "mini_dlrm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_dlrm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
