# Empty compiler generated dependencies file for training_job_test.
# This may be replaced when dependencies are built.
