file(REMOVE_RECURSE
  "CMakeFiles/training_job_test.dir/training_job_test.cc.o"
  "CMakeFiles/training_job_test.dir/training_job_test.cc.o.d"
  "training_job_test"
  "training_job_test.pdb"
  "training_job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
