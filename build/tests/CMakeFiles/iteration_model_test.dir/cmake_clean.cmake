file(REMOVE_RECURSE
  "CMakeFiles/iteration_model_test.dir/iteration_model_test.cc.o"
  "CMakeFiles/iteration_model_test.dir/iteration_model_test.cc.o.d"
  "iteration_model_test"
  "iteration_model_test.pdb"
  "iteration_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iteration_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
