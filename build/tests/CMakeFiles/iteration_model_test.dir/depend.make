# Empty dependencies file for iteration_model_test.
# This may be replaced when dependencies are built.
