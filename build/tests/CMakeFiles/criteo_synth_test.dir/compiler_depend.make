# Empty compiler generated dependencies file for criteo_synth_test.
# This may be replaced when dependencies are built.
