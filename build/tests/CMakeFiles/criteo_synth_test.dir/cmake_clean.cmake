file(REMOVE_RECURSE
  "CMakeFiles/criteo_synth_test.dir/criteo_synth_test.cc.o"
  "CMakeFiles/criteo_synth_test.dir/criteo_synth_test.cc.o.d"
  "criteo_synth_test"
  "criteo_synth_test.pdb"
  "criteo_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criteo_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
