
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nsga2_test.cc" "tests/CMakeFiles/nsga2_test.dir/nsga2_test.cc.o" "gcc" "tests/CMakeFiles/nsga2_test.dir/nsga2_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/brain/CMakeFiles/dlrover_brain.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/dlrover_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/dlrover_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dlrover_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/elastic/CMakeFiles/dlrover_elastic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlrover_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlrover_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
