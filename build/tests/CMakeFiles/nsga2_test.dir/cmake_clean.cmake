file(REMOVE_RECURSE
  "CMakeFiles/nsga2_test.dir/nsga2_test.cc.o"
  "CMakeFiles/nsga2_test.dir/nsga2_test.cc.o.d"
  "nsga2_test"
  "nsga2_test.pdb"
  "nsga2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsga2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
