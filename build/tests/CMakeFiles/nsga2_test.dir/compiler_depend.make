# Empty compiler generated dependencies file for nsga2_test.
# This may be replaced when dependencies are built.
