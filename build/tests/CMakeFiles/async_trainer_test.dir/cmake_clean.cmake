file(REMOVE_RECURSE
  "CMakeFiles/async_trainer_test.dir/async_trainer_test.cc.o"
  "CMakeFiles/async_trainer_test.dir/async_trainer_test.cc.o.d"
  "async_trainer_test"
  "async_trainer_test.pdb"
  "async_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
