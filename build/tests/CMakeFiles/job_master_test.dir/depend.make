# Empty dependencies file for job_master_test.
# This may be replaced when dependencies are built.
