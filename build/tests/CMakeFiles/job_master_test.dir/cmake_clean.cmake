file(REMOVE_RECURSE
  "CMakeFiles/job_master_test.dir/job_master_test.cc.o"
  "CMakeFiles/job_master_test.dir/job_master_test.cc.o.d"
  "job_master_test"
  "job_master_test.pdb"
  "job_master_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
