file(REMOVE_RECURSE
  "CMakeFiles/brain_test.dir/brain_test.cc.o"
  "CMakeFiles/brain_test.dir/brain_test.cc.o.d"
  "brain_test"
  "brain_test.pdb"
  "brain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
