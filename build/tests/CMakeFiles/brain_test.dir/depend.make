# Empty dependencies file for brain_test.
# This may be replaced when dependencies are built.
