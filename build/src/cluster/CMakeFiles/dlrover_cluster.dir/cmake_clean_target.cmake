file(REMOVE_RECURSE
  "libdlrover_cluster.a"
)
