# Empty dependencies file for dlrover_cluster.
# This may be replaced when dependencies are built.
