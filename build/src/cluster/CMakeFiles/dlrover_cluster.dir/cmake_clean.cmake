file(REMOVE_RECURSE
  "CMakeFiles/dlrover_cluster.dir/background_load.cc.o"
  "CMakeFiles/dlrover_cluster.dir/background_load.cc.o.d"
  "CMakeFiles/dlrover_cluster.dir/cluster.cc.o"
  "CMakeFiles/dlrover_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/dlrover_cluster.dir/failure_injector.cc.o"
  "CMakeFiles/dlrover_cluster.dir/failure_injector.cc.o.d"
  "libdlrover_cluster.a"
  "libdlrover_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
