# Empty dependencies file for dlrover_baselines.
# This may be replaced when dependencies are built.
