file(REMOVE_RECURSE
  "CMakeFiles/dlrover_baselines.dir/elastic_scheduler.cc.o"
  "CMakeFiles/dlrover_baselines.dir/elastic_scheduler.cc.o.d"
  "CMakeFiles/dlrover_baselines.dir/manual.cc.o"
  "CMakeFiles/dlrover_baselines.dir/manual.cc.o.d"
  "CMakeFiles/dlrover_baselines.dir/optimus.cc.o"
  "CMakeFiles/dlrover_baselines.dir/optimus.cc.o.d"
  "libdlrover_baselines.a"
  "libdlrover_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
