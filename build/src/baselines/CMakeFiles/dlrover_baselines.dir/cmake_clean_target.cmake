file(REMOVE_RECURSE
  "libdlrover_baselines.a"
)
