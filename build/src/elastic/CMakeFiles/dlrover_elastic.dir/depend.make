# Empty dependencies file for dlrover_elastic.
# This may be replaced when dependencies are built.
