file(REMOVE_RECURSE
  "libdlrover_elastic.a"
)
