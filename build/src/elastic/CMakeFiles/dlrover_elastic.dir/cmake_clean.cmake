file(REMOVE_RECURSE
  "CMakeFiles/dlrover_elastic.dir/heartbeat.cc.o"
  "CMakeFiles/dlrover_elastic.dir/heartbeat.cc.o.d"
  "CMakeFiles/dlrover_elastic.dir/oom_predictor.cc.o"
  "CMakeFiles/dlrover_elastic.dir/oom_predictor.cc.o.d"
  "CMakeFiles/dlrover_elastic.dir/shard_queue.cc.o"
  "CMakeFiles/dlrover_elastic.dir/shard_queue.cc.o.d"
  "libdlrover_elastic.a"
  "libdlrover_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
