file(REMOVE_RECURSE
  "libdlrover_common.a"
)
