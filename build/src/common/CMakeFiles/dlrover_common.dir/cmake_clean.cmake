file(REMOVE_RECURSE
  "CMakeFiles/dlrover_common.dir/logging.cc.o"
  "CMakeFiles/dlrover_common.dir/logging.cc.o.d"
  "CMakeFiles/dlrover_common.dir/matrix.cc.o"
  "CMakeFiles/dlrover_common.dir/matrix.cc.o.d"
  "CMakeFiles/dlrover_common.dir/stats.cc.o"
  "CMakeFiles/dlrover_common.dir/stats.cc.o.d"
  "CMakeFiles/dlrover_common.dir/status.cc.o"
  "CMakeFiles/dlrover_common.dir/status.cc.o.d"
  "libdlrover_common.a"
  "libdlrover_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
