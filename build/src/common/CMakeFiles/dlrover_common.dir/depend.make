# Empty dependencies file for dlrover_common.
# This may be replaced when dependencies are built.
