file(REMOVE_RECURSE
  "libdlrover_sim.a"
)
