# Empty dependencies file for dlrover_sim.
# This may be replaced when dependencies are built.
