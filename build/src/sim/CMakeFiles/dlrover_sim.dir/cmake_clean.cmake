file(REMOVE_RECURSE
  "CMakeFiles/dlrover_sim.dir/simulator.cc.o"
  "CMakeFiles/dlrover_sim.dir/simulator.cc.o.d"
  "libdlrover_sim.a"
  "libdlrover_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
