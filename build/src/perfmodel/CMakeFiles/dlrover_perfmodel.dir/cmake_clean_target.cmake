file(REMOVE_RECURSE
  "libdlrover_perfmodel.a"
)
