# Empty compiler generated dependencies file for dlrover_perfmodel.
# This may be replaced when dependencies are built.
