file(REMOVE_RECURSE
  "CMakeFiles/dlrover_perfmodel.dir/throughput_model.cc.o"
  "CMakeFiles/dlrover_perfmodel.dir/throughput_model.cc.o.d"
  "libdlrover_perfmodel.a"
  "libdlrover_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
