file(REMOVE_RECURSE
  "libdlrover_dlrm.a"
)
