file(REMOVE_RECURSE
  "CMakeFiles/dlrover_dlrm.dir/async_trainer.cc.o"
  "CMakeFiles/dlrover_dlrm.dir/async_trainer.cc.o.d"
  "CMakeFiles/dlrover_dlrm.dir/criteo_synth.cc.o"
  "CMakeFiles/dlrover_dlrm.dir/criteo_synth.cc.o.d"
  "CMakeFiles/dlrover_dlrm.dir/metrics.cc.o"
  "CMakeFiles/dlrover_dlrm.dir/metrics.cc.o.d"
  "CMakeFiles/dlrover_dlrm.dir/mini_dlrm.cc.o"
  "CMakeFiles/dlrover_dlrm.dir/mini_dlrm.cc.o.d"
  "libdlrover_dlrm.a"
  "libdlrover_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
