# Empty compiler generated dependencies file for dlrover_dlrm.
# This may be replaced when dependencies are built.
