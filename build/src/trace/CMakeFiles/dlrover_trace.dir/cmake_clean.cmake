file(REMOVE_RECURSE
  "CMakeFiles/dlrover_trace.dir/workload_gen.cc.o"
  "CMakeFiles/dlrover_trace.dir/workload_gen.cc.o.d"
  "libdlrover_trace.a"
  "libdlrover_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
