# Empty dependencies file for dlrover_trace.
# This may be replaced when dependencies are built.
