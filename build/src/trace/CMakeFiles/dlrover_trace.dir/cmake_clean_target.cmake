file(REMOVE_RECURSE
  "libdlrover_trace.a"
)
