# Empty compiler generated dependencies file for dlrover_harness.
# This may be replaced when dependencies are built.
