file(REMOVE_RECURSE
  "CMakeFiles/dlrover_harness.dir/experiment.cc.o"
  "CMakeFiles/dlrover_harness.dir/experiment.cc.o.d"
  "CMakeFiles/dlrover_harness.dir/reporting.cc.o"
  "CMakeFiles/dlrover_harness.dir/reporting.cc.o.d"
  "libdlrover_harness.a"
  "libdlrover_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
