file(REMOVE_RECURSE
  "libdlrover_harness.a"
)
