
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/brain/brain.cc" "src/brain/CMakeFiles/dlrover_brain.dir/brain.cc.o" "gcc" "src/brain/CMakeFiles/dlrover_brain.dir/brain.cc.o.d"
  "/root/repo/src/brain/config_db.cc" "src/brain/CMakeFiles/dlrover_brain.dir/config_db.cc.o" "gcc" "src/brain/CMakeFiles/dlrover_brain.dir/config_db.cc.o.d"
  "/root/repo/src/brain/greedy_selector.cc" "src/brain/CMakeFiles/dlrover_brain.dir/greedy_selector.cc.o" "gcc" "src/brain/CMakeFiles/dlrover_brain.dir/greedy_selector.cc.o.d"
  "/root/repo/src/brain/nsga2.cc" "src/brain/CMakeFiles/dlrover_brain.dir/nsga2.cc.o" "gcc" "src/brain/CMakeFiles/dlrover_brain.dir/nsga2.cc.o.d"
  "/root/repo/src/brain/objectives.cc" "src/brain/CMakeFiles/dlrover_brain.dir/objectives.cc.o" "gcc" "src/brain/CMakeFiles/dlrover_brain.dir/objectives.cc.o.d"
  "/root/repo/src/brain/plan_generator.cc" "src/brain/CMakeFiles/dlrover_brain.dir/plan_generator.cc.o" "gcc" "src/brain/CMakeFiles/dlrover_brain.dir/plan_generator.cc.o.d"
  "/root/repo/src/brain/warm_start.cc" "src/brain/CMakeFiles/dlrover_brain.dir/warm_start.cc.o" "gcc" "src/brain/CMakeFiles/dlrover_brain.dir/warm_start.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlrover_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/dlrover_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/dlrover_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dlrover_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/elastic/CMakeFiles/dlrover_elastic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlrover_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
