file(REMOVE_RECURSE
  "libdlrover_brain.a"
)
