# Empty compiler generated dependencies file for dlrover_brain.
# This may be replaced when dependencies are built.
