file(REMOVE_RECURSE
  "CMakeFiles/dlrover_brain.dir/brain.cc.o"
  "CMakeFiles/dlrover_brain.dir/brain.cc.o.d"
  "CMakeFiles/dlrover_brain.dir/config_db.cc.o"
  "CMakeFiles/dlrover_brain.dir/config_db.cc.o.d"
  "CMakeFiles/dlrover_brain.dir/greedy_selector.cc.o"
  "CMakeFiles/dlrover_brain.dir/greedy_selector.cc.o.d"
  "CMakeFiles/dlrover_brain.dir/nsga2.cc.o"
  "CMakeFiles/dlrover_brain.dir/nsga2.cc.o.d"
  "CMakeFiles/dlrover_brain.dir/objectives.cc.o"
  "CMakeFiles/dlrover_brain.dir/objectives.cc.o.d"
  "CMakeFiles/dlrover_brain.dir/plan_generator.cc.o"
  "CMakeFiles/dlrover_brain.dir/plan_generator.cc.o.d"
  "CMakeFiles/dlrover_brain.dir/warm_start.cc.o"
  "CMakeFiles/dlrover_brain.dir/warm_start.cc.o.d"
  "libdlrover_brain.a"
  "libdlrover_brain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_brain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
