file(REMOVE_RECURSE
  "CMakeFiles/dlrover_ps.dir/iteration_model.cc.o"
  "CMakeFiles/dlrover_ps.dir/iteration_model.cc.o.d"
  "CMakeFiles/dlrover_ps.dir/model_profile.cc.o"
  "CMakeFiles/dlrover_ps.dir/model_profile.cc.o.d"
  "CMakeFiles/dlrover_ps.dir/training_job.cc.o"
  "CMakeFiles/dlrover_ps.dir/training_job.cc.o.d"
  "libdlrover_ps.a"
  "libdlrover_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
