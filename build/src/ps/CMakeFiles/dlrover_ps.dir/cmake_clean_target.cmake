file(REMOVE_RECURSE
  "libdlrover_ps.a"
)
