# Empty compiler generated dependencies file for dlrover_ps.
# This may be replaced when dependencies are built.
