file(REMOVE_RECURSE
  "CMakeFiles/dlrover_master.dir/job_master.cc.o"
  "CMakeFiles/dlrover_master.dir/job_master.cc.o.d"
  "libdlrover_master.a"
  "libdlrover_master.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrover_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
