file(REMOVE_RECURSE
  "libdlrover_master.a"
)
