# Empty dependencies file for dlrover_master.
# This may be replaced when dependencies are built.
