# Empty dependencies file for elastic_fault_tolerance.
# This may be replaced when dependencies are built.
