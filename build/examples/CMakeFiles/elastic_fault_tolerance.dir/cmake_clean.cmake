file(REMOVE_RECURSE
  "CMakeFiles/elastic_fault_tolerance.dir/elastic_fault_tolerance.cpp.o"
  "CMakeFiles/elastic_fault_tolerance.dir/elastic_fault_tolerance.cpp.o.d"
  "elastic_fault_tolerance"
  "elastic_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
