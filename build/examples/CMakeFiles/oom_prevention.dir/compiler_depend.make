# Empty compiler generated dependencies file for oom_prevention.
# This may be replaced when dependencies are built.
