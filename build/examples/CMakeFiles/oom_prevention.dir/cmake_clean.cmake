file(REMOVE_RECURSE
  "CMakeFiles/oom_prevention.dir/oom_prevention.cpp.o"
  "CMakeFiles/oom_prevention.dir/oom_prevention.cpp.o.d"
  "oom_prevention"
  "oom_prevention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oom_prevention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
