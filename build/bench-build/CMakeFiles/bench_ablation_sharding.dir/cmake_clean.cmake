file(REMOVE_RECURSE
  "../bench/bench_ablation_sharding"
  "../bench/bench_ablation_sharding.pdb"
  "CMakeFiles/bench_ablation_sharding.dir/bench_ablation_sharding.cc.o"
  "CMakeFiles/bench_ablation_sharding.dir/bench_ablation_sharding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
