# Empty dependencies file for bench_fig1_memory_growth.
# This may be replaced when dependencies are built.
