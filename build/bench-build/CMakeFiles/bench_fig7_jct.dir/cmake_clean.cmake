file(REMOVE_RECURSE
  "../bench/bench_fig7_jct"
  "../bench/bench_fig7_jct.pdb"
  "CMakeFiles/bench_fig7_jct.dir/bench_fig7_jct.cc.o"
  "CMakeFiles/bench_fig7_jct.dir/bench_fig7_jct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_jct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
