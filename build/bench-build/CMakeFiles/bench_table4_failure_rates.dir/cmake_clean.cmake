file(REMOVE_RECURSE
  "../bench/bench_table4_failure_rates"
  "../bench/bench_table4_failure_rates.pdb"
  "CMakeFiles/bench_table4_failure_rates.dir/bench_table4_failure_rates.cc.o"
  "CMakeFiles/bench_table4_failure_rates.dir/bench_table4_failure_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_failure_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
