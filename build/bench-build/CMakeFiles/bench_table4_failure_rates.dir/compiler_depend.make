# Empty compiler generated dependencies file for bench_table4_failure_rates.
# This may be replaced when dependencies are built.
