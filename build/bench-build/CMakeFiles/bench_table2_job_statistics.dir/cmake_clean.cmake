file(REMOVE_RECURSE
  "../bench/bench_table2_job_statistics"
  "../bench/bench_table2_job_statistics.pdb"
  "CMakeFiles/bench_table2_job_statistics.dir/bench_table2_job_statistics.cc.o"
  "CMakeFiles/bench_table2_job_statistics.dir/bench_table2_job_statistics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_job_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
