file(REMOVE_RECURSE
  "../bench/bench_table1_cost_comparison"
  "../bench/bench_table1_cost_comparison.pdb"
  "CMakeFiles/bench_table1_cost_comparison.dir/bench_table1_cost_comparison.cc.o"
  "CMakeFiles/bench_table1_cost_comparison.dir/bench_table1_cost_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cost_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
