# Empty compiler generated dependencies file for bench_fig10_autoscale_throughput.
# This may be replaced when dependencies are built.
