
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_autoscale_throughput.cc" "bench-build/CMakeFiles/bench_fig10_autoscale_throughput.dir/bench_fig10_autoscale_throughput.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig10_autoscale_throughput.dir/bench_fig10_autoscale_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dlrover_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/dlrm/CMakeFiles/dlrover_dlrm.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dlrover_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/master/CMakeFiles/dlrover_master.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dlrover_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/brain/CMakeFiles/dlrover_brain.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/dlrover_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/dlrover_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dlrover_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/elastic/CMakeFiles/dlrover_elastic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlrover_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlrover_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
