file(REMOVE_RECURSE
  "../bench/bench_fig13_straggler"
  "../bench/bench_fig13_straggler.pdb"
  "CMakeFiles/bench_fig13_straggler.dir/bench_fig13_straggler.cc.o"
  "CMakeFiles/bench_fig13_straggler.dir/bench_fig13_straggler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
