file(REMOVE_RECURSE
  "../bench/bench_fig1_operator_breakdown"
  "../bench/bench_fig1_operator_breakdown.pdb"
  "CMakeFiles/bench_fig1_operator_breakdown.dir/bench_fig1_operator_breakdown.cc.o"
  "CMakeFiles/bench_fig1_operator_breakdown.dir/bench_fig1_operator_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_operator_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
