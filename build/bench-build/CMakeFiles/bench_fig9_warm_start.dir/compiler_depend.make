# Empty compiler generated dependencies file for bench_fig9_warm_start.
# This may be replaced when dependencies are built.
