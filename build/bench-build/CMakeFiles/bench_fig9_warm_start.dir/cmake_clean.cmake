file(REMOVE_RECURSE
  "../bench/bench_fig9_warm_start"
  "../bench/bench_fig9_warm_start.pdb"
  "CMakeFiles/bench_fig9_warm_start.dir/bench_fig9_warm_start.cc.o"
  "CMakeFiles/bench_fig9_warm_start.dir/bench_fig9_warm_start.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_warm_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
