file(REMOVE_RECURSE
  "../bench/bench_fig14_production_migration"
  "../bench/bench_fig14_production_migration.pdb"
  "CMakeFiles/bench_fig14_production_migration.dir/bench_fig14_production_migration.cc.o"
  "CMakeFiles/bench_fig14_production_migration.dir/bench_fig14_production_migration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_production_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
