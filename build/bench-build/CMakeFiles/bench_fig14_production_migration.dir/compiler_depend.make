# Empty compiler generated dependencies file for bench_fig14_production_migration.
# This may be replaced when dependencies are built.
