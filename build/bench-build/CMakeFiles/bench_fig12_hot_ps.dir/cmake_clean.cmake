file(REMOVE_RECURSE
  "../bench/bench_fig12_hot_ps"
  "../bench/bench_fig12_hot_ps.pdb"
  "CMakeFiles/bench_fig12_hot_ps.dir/bench_fig12_hot_ps.cc.o"
  "CMakeFiles/bench_fig12_hot_ps.dir/bench_fig12_hot_ps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hot_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
